"""Pragma machinery tests: scoping, meta-findings, JSON round-trip.

The suppression pragma ``# repro: allow[RULE-ID] <justification>`` has
two scopes (exact line, whole function via the ``def`` line), two
meta-findings (bare suppression, unknown rule id — themselves never
suppressible), and a pinned JSON report shape.  All are exercised here
on inline sources through the same ``analyze_source`` entry the runner
uses.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    REPORT_VERSION,
    AnalysisConfig,
    Finding,
    Report,
    analyze_source,
    build_rules,
    known_rule_ids,
    validate_report_dict,
)
from repro.analysis.pragmas import (
    PRAGMA_BARE,
    PRAGMA_UNKNOWN,
    build_index,
    scan_pragmas,
)

ROOT = Path(__file__).resolve().parents[1]


def det_rules():
    # DET-RNG's global-RNG check is path-independent: ideal for inline
    # pragma sources.
    return build_rules(AnalysisConfig(root=ROOT, rule_ids=["DET-RNG"]))


LINE_SCOPED = (
    "import random\n"
    "\n"
    "def draw():\n"
    "    a = random.random()  # repro: allow[DET-RNG] fixture: this draw only\n"
    "    b = random.random()\n"
    "    return a + b\n"
)


def test_exact_line_scope_suppresses_only_that_line():
    active, suppressed = analyze_source(LINE_SCOPED, "fixture.py", det_rules())
    assert [f.line for f in suppressed] == [4]
    assert suppressed[0].justification == "fixture: this draw only"
    assert [f.line for f in active] == [5]
    assert active[0].rule == "DET-RNG"


FUNC_SCOPED = (
    "import random\n"
    "\n"
    "def draw():  # repro: allow[DET-RNG] fixture: whole-function waiver\n"
    "    a = random.random()\n"
    "    b = random.random()\n"
    "    return a + b\n"
    "\n"
    "def other():\n"
    "    return random.random()\n"
)


def test_function_scope_covers_body_not_neighbours():
    active, suppressed = analyze_source(FUNC_SCOPED, "fixture.py", det_rules())
    assert sorted(f.line for f in suppressed) == [4, 5]
    assert all(
        f.justification == "fixture: whole-function waiver" for f in suppressed
    )
    assert [f.line for f in active] == [9]


def test_pragma_does_not_cover_other_rules():
    src = (
        "import random\n"
        "x = random.random()  # repro: allow[ONE-KERNEL] wrong rule named\n"
    )
    active, suppressed = analyze_source(src, "fixture.py", det_rules())
    assert [f.rule for f in active] == ["DET-RNG"]
    assert suppressed == []


def test_unknown_rule_id_is_a_finding():
    src = "x = 1  # repro: allow[NO-SUCH-RULE] whatever\n"
    active, suppressed = analyze_source(src, "fixture.py", det_rules())
    assert [f.rule for f in active] == [PRAGMA_UNKNOWN]
    assert "NO-SUCH-RULE" in active[0].message
    assert suppressed == []


def test_bare_pragma_is_a_finding_but_still_suppresses():
    src = (
        "import random\n"
        "x = random.random()  # repro: allow[DET-RNG]\n"
    )
    active, suppressed = analyze_source(src, "fixture.py", det_rules())
    assert [f.rule for f in active] == [PRAGMA_BARE]
    assert [f.rule for f in suppressed] == ["DET-RNG"]
    assert suppressed[0].justification == ""


def test_meta_findings_cannot_be_suppressed():
    # A justified allow[PRAGMA-BARE] on the def line must NOT silence the
    # PRAGMA-BARE raised by the bare pragma inside: a pragma cannot
    # vouch for another pragma.
    src = (
        "import random\n"
        "def f():  # repro: allow[PRAGMA-BARE] vouch attempt\n"
        "    return random.random()  # repro: allow[DET-RNG]\n"
    )
    active, suppressed = analyze_source(src, "fixture.py", det_rules())
    assert [f.rule for f in active] == [PRAGMA_BARE]
    assert [f.rule for f in suppressed] == ["DET-RNG"]


def test_meta_rule_ids_are_known_to_pragma_validation():
    known = known_rule_ids()
    assert PRAGMA_BARE in known and PRAGMA_UNKNOWN in known


def test_pragma_inside_string_literal_is_ignored():
    src = 's = "# repro: allow[DET-RNG] not a pragma"\n'
    assert scan_pragmas(src) == []


def test_scan_pragmas_parses_rule_and_justification():
    src = "x = 1  # repro: allow[DET-RNG]   spaced   justification  \n"
    (pragma,) = scan_pragmas(src)
    assert pragma.rule == "DET-RNG"
    assert pragma.line == 1
    assert pragma.justification == "spaced   justification"


def test_innermost_function_span_wins():
    import ast

    src = (
        "def outer():  # repro: allow[DET-RNG] outer waiver\n"
        "    def inner():  # repro: allow[DET-RNG] inner waiver\n"
        "        return 1\n"
        "    return inner\n"
    )
    index = build_index(src, ast.parse(src))
    assert index.match("DET-RNG", 3).justification == "inner waiver"
    assert index.match("DET-RNG", 4).justification == "outer waiver"
    assert index.match("DET-RNG", 1).justification == "outer waiver"


# -- JSON report shape -----------------------------------------------------


def test_report_json_round_trips_and_validates():
    active, suppressed = analyze_source(LINE_SCOPED, "fixture.py", det_rules())
    report = Report(findings=active, suppressed=suppressed, files_scanned=1)
    payload = json.loads(json.dumps(report.to_dict()))
    validate_report_dict(payload)
    assert payload["version"] == REPORT_VERSION

    back = [Finding.from_dict(obj) for obj in payload["findings"]]
    assert [(f.rule, f.file, f.line, f.col, f.message, f.hint) for f in back] == [
        (f.rule, f.file, f.line, f.col, f.message, f.hint) for f in active
    ]
    sup = [Finding.from_dict(obj) for obj in payload["suppressed"]]
    assert sup[0].suppressed is True
    assert sup[0].justification == "fixture: this draw only"


def test_validate_report_rejects_malformed_payloads():
    good = Report(files_scanned=0).to_dict()
    validate_report_dict(good)  # baseline: the empty report is valid

    breakers = [
        {**good, "version": 99},
        {**good, "files_scanned": "zero"},
        {**good, "findings": "not-a-list"},
        {**good, "findings": [{"rule": "X"}]},
        {
            **good,
            "findings": [
                {
                    "rule": "X",
                    "file": "f.py",
                    "line": "one",
                    "col": 1,
                    "message": "m",
                    "hint": "",
                }
            ],
        },
    ]
    for payload in breakers:
        with pytest.raises(ValueError):
            validate_report_dict(payload)
