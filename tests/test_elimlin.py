"""Tests for ElimLin (paper section II-C)."""

import itertools

from repro.anf import Poly, parse_system
from repro.core import Config, run_elimlin


def polys_of(text):
    _, polys = parse_system(text)
    return polys


def test_paper_section2c_example():
    """{x1+x2+x3, x1x2+x2x3+1}: ElimLin derives x2 + 1 (and then more)."""
    polys = polys_of("x1 + x2 + x3\nx1*x2 + x2*x3 + 1")
    result = run_elimlin(polys, Config(elimlin_sample_bits=6))
    assert polys_of("x1 + x2 + x3")[0] in result.facts
    # After substitution the example simplifies to x2 + 1.
    assert any(
        p.as_unit() == (2, 1) for p in result.facts
    ), "expected to learn x2 = 1, got {}".format(texts)


def test_paper_section2e_learns_x1():
    """Section II-E: ElimLin's GJE sees four linear equations and then
    derives x1 = 1 by substitution.

    Note: no GF(2) combination of the raw system (1) is linear (each
    nonlinear monomial is unique to one equation), so the paper's account
    presupposes the XL-learnt linear facts are already present — which is
    exactly the Fig. 1 pipeline order (XL before ElimLin).  We therefore
    run ElimLin on the XL-augmented system.
    """
    polys = polys_of("""
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
x1 + x5 + 1
x1 + x4
x3 + 1
x1 + x2
""")
    result = run_elimlin(polys, Config(elimlin_sample_bits=8))
    # The four linear equations are rediscovered by the initial GJE ...
    linear_facts = [p for p in result.facts if p.is_linear()]
    assert len(linear_facts) >= 4
    # ... and substitution derives the paper's new ElimLin fact x1 = 1
    # (possibly expressed through an equivalent eliminated variable).
    units = {p.as_unit() for p in result.facts if p.as_unit()}
    assert any(val == 1 for _, val in units)


def test_facts_are_consequences():
    polys = polys_of("x1*x2 + x3\nx2 + x3 + 1\nx1*x3 + x2")
    result = run_elimlin(polys, Config(elimlin_sample_bits=8, seed=1))
    solutions = [
        bits
        for bits in itertools.product([0, 1], repeat=4)
        if all(p.evaluate(list(bits)) == 0 for p in polys)
    ]
    for fact in result.facts:
        for sol in solutions:
            assert fact.evaluate(list(sol)) == 0


def test_contradiction_detected():
    # x1 + 1 = 0 and x1 = 0 -> 1 = 0 after elimination.
    polys = polys_of("x1 + 1\nx1")
    result = run_elimlin(polys, Config(elimlin_sample_bits=4))
    assert result.contradiction
    assert Poly.one() in result.facts


def test_no_linear_equations_terminates():
    polys = polys_of("x1*x2 + x3*x4")
    result = run_elimlin(polys, Config(elimlin_sample_bits=8))
    assert result.rounds >= 1
    assert not result.contradiction


def test_empty_input():
    result = run_elimlin([], Config())
    assert result.facts == []
    assert result.rounds == 0


def test_eliminated_counter():
    polys = polys_of("x1 + x2\nx1*x3 + x2*x3 + x3")
    result = run_elimlin(polys, Config(elimlin_sample_bits=8))
    assert result.eliminated >= 1


def test_stale_linear_equation_regression():
    """Pending linear equations must be rewritten after each elimination.

    GJE on this system leaves two linear rows overlapping in x1:
    ``x5 + x1`` and ``x4 + x1``.  The first eliminates x1 (it is the
    least-occurring variable of that equation).  The old engine then
    processed ``x4 + x1`` *unrewritten*: x1, now occurring nowhere, was
    re-targeted as the least-occurring variable, so the substitution was
    vacuous — x1 was "eliminated" twice, x4 never, and x4 survived in
    the residual although ``x4 = x1`` was learnt.  With the fix the
    pending equation is rewritten to ``x4 + x5`` and x4 is genuinely
    substituted out.
    """
    polys = polys_of("""
x4 + x1
x5 + x1
x2*x4 + x1
x3*x4 + x6
x5*x6 + x2
""")
    result = run_elimlin(polys, Config(elimlin_sample_bits=10))
    assert not result.contradiction
    # Two independent linear equations -> two *distinct* eliminations.
    assert result.eliminated == 2
    assert len(set(result.eliminated_vars)) == 2
    # The invariant: an eliminated variable never reappears.
    residual_vars = set()
    for p in result.residual:
        residual_vars |= p.variables()
    assert not residual_vars & set(result.eliminated_vars)
    # Specifically, the second equation's pivot x4 must be gone (the old
    # engine left it in the residual).
    assert 4 not in residual_vars


def test_eliminated_vars_never_in_residual():
    """ElimLin invariant on a deeper system: residual is disjoint from
    the eliminated variables."""
    polys = polys_of("""
x1 + x2 + x3
x2 + x4 + 1
x1*x4 + x5
x3*x5 + x2 + x6
x5*x6 + x1
""")
    result = run_elimlin(polys, Config(elimlin_sample_bits=10, seed=2))
    assert not result.contradiction
    residual_vars = set()
    for p in result.residual:
        residual_vars |= p.variables()
    assert not residual_vars & set(result.eliminated_vars)
    assert len(set(result.eliminated_vars)) == result.eliminated
