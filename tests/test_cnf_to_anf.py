"""Tests for CNF → ANF conversion (paper section III-D)."""

import itertools

import pytest

from repro.anf import Poly
from repro.core import Config, clause_to_poly, cnf_to_anf
from repro.sat import CnfFormula, mk_lit


def test_paper_example_clause():
    """¬x1 ∨ x2 becomes x1·(x2+1) = x1x2 + x1."""
    p = clause_to_poly([mk_lit(1, True), mk_lit(2)])
    assert p == Poly([(1, 2), (1,)])


def test_all_negative_clause_single_monomial():
    # ¬x0 ∨ ¬x1 -> x0x1.
    p = clause_to_poly([mk_lit(0, True), mk_lit(1, True)])
    assert p == Poly([(0, 1)])


def test_positive_clause_expands():
    # x0 ∨ x1 -> (x0+1)(x1+1) = x0x1 + x0 + x1 + 1: 2^2 terms.
    p = clause_to_poly([mk_lit(0), mk_lit(1)])
    assert len(p) == 4


def test_polynomial_vanishes_iff_clause_satisfied():
    lits = [mk_lit(0), mk_lit(1, True), mk_lit(2)]
    p = clause_to_poly(lits)
    for bits in itertools.product([0, 1], repeat=3):
        clause_sat = any(bits[l >> 1] ^ (l & 1) for l in lits)
        assert (p.evaluate(list(bits)) == 0) == clause_sat


def test_clause_cutting_limits_positive_literals():
    formula = CnfFormula(8)
    formula.add_clause([mk_lit(v) for v in range(8)])  # 8 positives
    result = cnf_to_anf(formula, Config(clause_cut_len=3))
    assert result.cut_vars, "expected clause cutting"
    for p in result.polynomials:
        # 2^(positives) terms; with <= 3 positives + 1 aux that is <= 16.
        assert len(p) <= 16


def test_cutting_preserves_satisfiability():
    formula = CnfFormula(6)
    formula.add_clause([mk_lit(v) for v in range(6)])
    formula.add_clause([mk_lit(0, True), mk_lit(1, True)])
    result = cnf_to_anf(formula, Config(clause_cut_len=2))
    n_total = result.ring.n_vars
    # Project ANF solutions to the 6 CNF vars; compare with CNF models.
    anf_sols = set()
    for bits in itertools.product([0, 1], repeat=n_total):
        if all(p.evaluate(list(bits)) == 0 for p in result.polynomials):
            anf_sols.add(bits[:6])
    cnf_sols = set()
    for bits in itertools.product([0, 1], repeat=6):
        if all(
            any(bits[l >> 1] ^ (l & 1) for l in c) for c in formula.clauses
        ):
            cnf_sols.add(bits)
    assert anf_sols == cnf_sols


def test_empty_clause_becomes_contradiction():
    formula = CnfFormula(1)
    formula.add_clause([])
    result = cnf_to_anf(formula)
    assert Poly.one() in result.polynomials


def test_xor_constraints_become_linear():
    formula = CnfFormula(4)
    formula.add_xor([0, 1, 2], 1)
    result = cnf_to_anf(formula)
    assert result.polynomials == [Poly([(0,), (1,), (2,), ()])]


def test_unit_clause():
    formula = CnfFormula(2)
    formula.add_clause([mk_lit(1, True)])
    result = cnf_to_anf(formula)
    assert result.polynomials == [Poly.variable(1)]


def test_variable_mapping_is_identity():
    formula = CnfFormula(5)
    formula.add_clause([mk_lit(4), mk_lit(2, True)])
    result = cnf_to_anf(formula)
    assert result.n_cnf_vars == 5
    assert result.ring.n_vars >= 5


def test_clause_to_poly_mask_matches_tuple_oracle():
    """The mask-native clause expansion is the tuple oracle's equal."""
    import random

    from repro.anf import monomial as mono

    rng = random.Random(5)
    for _ in range(40):
        lits = [
            mk_lit(rng.randrange(70), rng.random() < 0.5)
            for _ in range(rng.randint(1, 5))
        ]
        fast = clause_to_poly(lits)
        with mono.tuple_oracle():
            slow = clause_to_poly(lits)
        assert fast == slow


def test_back_translation_of_converted_anf_preserves_models():
    """ANF → CNF → ANF round trip: the conversion's cut and monomial
    auxiliaries come back as ordinary variables whose projection to the
    original ANF variables preserves the solution set exactly."""
    from repro.anf import Poly
    from repro.core import AnfToCnf

    polys = [
        Poly([(0, 1), (2,), (3,), ()]),  # x0x1 + x2 + x3 + 1
        Poly([(1, 2), (0,), (3,)]),
        Poly([(0,), (1,), (2,), (3,), (4,)]),
    ]
    n = 5
    original = set()
    for bits in itertools.product([0, 1], repeat=n):
        if all(p.evaluate(list(bits)) == 0 for p in polys):
            original.add(bits)
    # Force both auxiliary kinds: tiny K (Tseitin monomial vars) and
    # tiny L (cut vars).
    conv = AnfToCnf(Config(karnaugh_limit=1, xor_cut_len=3)).convert_polynomials(
        polys, n_vars=n
    )
    assert conv.cut_vars and conv.stats.monomial_vars > 0
    back = cnf_to_anf(conv.formula, Config(clause_cut_len=4))
    # Every CNF variable of the intermediate formula is an original,
    # monomial or cut variable; back-translation then adds its own
    # clause-cutting auxiliaries on top.
    for v in range(conv.formula.n_vars):
        assert (
            conv.is_original_var(v)
            or conv.is_monomial_var(v)
            or conv.is_cut_var(v)
        )
    n_total = back.ring.n_vars
    projected = set()
    for bits in itertools.product([0, 1], repeat=n_total):
        if all(p.evaluate(list(bits)) == 0 for p in back.polynomials):
            projected.add(bits[:n])
    assert projected == original
