"""Tests for the bit-packed GF(2) matrix (M4RI stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import GF2Matrix, rref_rows

dense = st.lists(
    st.lists(st.integers(0, 1), min_size=6, max_size=6),
    min_size=1,
    max_size=8,
)


def test_get_set():
    m = GF2Matrix(2, 70)  # spans two words
    m.set(0, 0, 1)
    m.set(1, 69, 1)
    assert m.get(0, 0) == 1
    assert m.get(1, 69) == 1
    assert m.get(0, 69) == 0
    m.set(0, 0, 0)
    assert m.get(0, 0) == 0


def test_flip():
    m = GF2Matrix(1, 3)
    m.flip(0, 1)
    assert m.get(0, 1) == 1
    m.flip(0, 1)
    assert m.get(0, 1) == 0


def test_out_of_range_raises():
    m = GF2Matrix(1, 3)
    with pytest.raises(IndexError):
        m.get(0, 3)
    with pytest.raises(IndexError):
        m.set(1, 0, 1)


def test_row_cols():
    m = GF2Matrix.from_rows([[0, 65], [2]], 70)
    assert m.row_cols(0) == [0, 65]
    assert m.row_cols(1) == [2]


def test_identity_and_rank():
    m = GF2Matrix.identity(5)
    assert m.rank() == 5


def test_xor_row():
    m = GF2Matrix.from_rows([[0, 1], [1, 2]], 3)
    m.xor_row_into(0, 1)
    assert m.row_cols(1) == [0, 2]


def test_swap_rows():
    m = GF2Matrix.from_rows([[0], [1]], 2)
    m.swap_rows(0, 1)
    assert m.row_cols(0) == [1]


def test_append_row():
    m = GF2Matrix(1, 4)
    idx = m.append_row([1, 3])
    assert idx == 1
    assert m.row_cols(1) == [1, 3]


def test_append_row_many_amortised():
    """10k appends ride the capacity-doubling buffer: content stays
    intact and the backing buffer is reallocated only O(log n) times."""
    m = GF2Matrix(0, 70)
    buffer_ids = {id(m._buf)}
    for i in range(10_000):
        m.append_row([i % 70, 69])
        buffer_ids.add(id(m._buf))
    assert m.n_rows == 10_000
    assert len(buffer_ids) <= 16  # geometric growth, not per-append
    assert m.row_cols(9_999) == sorted({9_999 % 70, 69})
    assert m.row_cols(0) == [0, 69]


def test_rref_known_example():
    # The matrix from the paper's Table I (8 columns).
    rows = [
        [3, 6, 7],       # x1x2 + x1 + 1
        [3, 6],          # x1 * (x1x2 + x1 + 1) = x1x2 + x1  (degree-collapsed)
    ]
    m = GF2Matrix.from_rows(rows, 8)
    pivots = m.rref()
    assert pivots == [3, 7]
    assert m.row_cols(0) == [3, 6]
    assert m.row_cols(1) == [7]


def test_rref_detects_inconsistency_row():
    # rows x1, x1 + 1 reduce to x1 and 1.
    m = GF2Matrix.from_rows([[0], [0, 1]], 2)
    m.rref()
    reduced = sorted(tuple(m.row_cols(i)) for i in range(2))
    assert reduced == [(0,), (1,)]


def test_solve_affine_simple():
    # x0 + x1 = 1, x1 = 1 -> x0 = 0, x1 = 1.
    m = GF2Matrix.from_rows([[0, 1], [1]], 2)
    x = m.solve_affine([1, 1])
    assert x == [0, 1]


def test_solve_affine_inconsistent():
    m = GF2Matrix.from_rows([[0], [0]], 1)
    assert m.solve_affine([0, 1]) is None


def test_rref_rows_helper():
    reduced, pivots = rref_rows([[0, 1], [1, 2], [0, 2]], 3)
    assert pivots == [0, 1]
    assert len(reduced) == 2


@settings(max_examples=60)
@given(dense)
def test_rref_idempotent(rows):
    m = GF2Matrix.from_dense(rows)
    m.rref()
    before = m.to_dense().tolist()
    m.rref()
    assert m.to_dense().tolist() == before


@settings(max_examples=60)
@given(dense)
def test_rref_preserves_row_space(rows):
    """Every original row must be a GF(2) combination of the reduced rows,
    checked by rank invariance when appending it back."""
    m = GF2Matrix.from_dense(rows)
    original = m.copy()
    m.rref()
    base_rank = len([i for i in range(m.n_rows) if not m.row_is_zero(i)])
    assert base_rank == original.rank()
    for i in range(original.n_rows):
        stacked = m.copy()
        stacked.append_row(original.row_cols(i))
        assert stacked.rank() == base_rank


@settings(max_examples=60)
@given(dense)
def test_rref_pivot_columns_are_unit(rows):
    m = GF2Matrix.from_dense(rows)
    pivots = m.rref()
    for r, j in enumerate(pivots):
        column = [m.get(i, j) for i in range(m.n_rows)]
        assert column[r] == 1
        assert sum(column) == 1


@settings(max_examples=40)
@given(dense, st.lists(st.integers(0, 1), min_size=6, max_size=6))
def test_solve_affine_verifies(rows, x):
    """For b = A·x, solve_affine must return some solution of A·y = b."""
    m = GF2Matrix.from_dense(rows)
    a = np.array(rows, dtype=np.uint8)
    b = (a @ np.array(x, dtype=np.uint8)) % 2
    y = m.solve_affine(list(int(v) for v in b))
    assert y is not None
    check = (a @ np.array(y, dtype=np.uint8)) % 2
    assert check.tolist() == b.tolist()


@settings(max_examples=80)
@given(st.sampled_from([1, 6, 31, 63, 64, 65, 128]), st.data())
def test_rref_matches_gj_oracle(width, data):
    """`rref` (Four-Russians) must be bit-for-bit the seed Gauss–Jordan:
    same pivot list, same row order, same row content — across widths,
    block overrides and column caps."""
    rows = data.draw(
        st.lists(st.integers(0, (1 << width) - 1), max_size=12)
    )
    max_cols = data.draw(st.sampled_from([None, width // 2, width]))
    block = data.draw(st.sampled_from([None, 1, 3, 8, 11, 16]))
    m = GF2Matrix.from_masks(rows, width)
    oracle = GF2Matrix.from_masks(rows, width)
    pivots = m.rref(max_cols=max_cols, block=block)
    assert pivots == oracle.rref_gj(max_cols=max_cols)
    assert (m._data == oracle._data).all()


def test_from_cells_matches_from_rows():
    rows = [[0, 65, 129], [], [64], [1, 1, 2]]
    a = GF2Matrix.from_rows(rows, 130)
    row_idx = [i for i, cols in enumerate(rows) for _ in cols]
    col_idx = [j for cols in rows for j in cols]
    b = GF2Matrix.from_cells(row_idx, col_idx, len(rows), 130)
    assert (a.to_dense() == b.to_dense()).all()


def test_from_cells_validates():
    with pytest.raises(ValueError):
        GF2Matrix.from_cells([0], [1, 2], 1, 3)
    with pytest.raises(IndexError):
        GF2Matrix.from_cells([0], [3], 1, 3)
    with pytest.raises(IndexError):
        GF2Matrix.from_cells([1], [0], 1, 3)
    empty = GF2Matrix.from_cells([], [], 2, 5)
    assert empty.n_rows == 2 and empty.n_cols == 5
    assert not empty.to_dense().any()


@settings(max_examples=40)
@given(
    st.lists(
        st.lists(st.integers(0, 129), max_size=6), min_size=1, max_size=8
    )
)
def test_rows_cols_matches_row_cols(rows):
    m = GF2Matrix.from_rows(rows, 130)
    bulk = m.rows_cols()
    assert len(bulk) == m.n_rows
    for i in range(m.n_rows):
        assert bulk[i] == m.row_cols(i)
