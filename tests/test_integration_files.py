"""File-level integration: .anf / DIMACS round trips through the CLI."""

import subprocess
import sys

import pytest

from repro.anf import parse_system
from repro.cli import main as cli_main
from repro.gen import main as gen_main
from repro.sat import Solver, parse_dimacs
from repro.sat.types import TRUE


def test_anf_to_cnf_file_solvable_externally(tmp_path):
    """The CNF the CLI writes must be solvable and consistent with the ANF."""
    anf_path = tmp_path / "in.anf"
    anf_path.write_text("x1*x2 + x3 + 1\nx1 + x2\nx3 + x2 + 1\n")
    cnf_path = tmp_path / "out.cnf"
    cli_main(["--anfread", str(anf_path), "--cnfwrite", str(cnf_path),
              "--verb", "0"])
    formula = parse_dimacs(cnf_path.read_text())
    solver = Solver()
    solver.ensure_vars(formula.n_vars)
    for c in formula.clauses:
        solver.add_clause(c)
    assert solver.solve() is True
    model = [1 if v == TRUE else 0 for v in solver.model]
    _, polys = parse_system(anf_path.read_text())
    padded = model + [0] * 10
    assert all(p.evaluate(padded) == 0 for p in polys)


def test_processed_anf_file_reparses_and_preserves_solutions(tmp_path):
    anf_path = tmp_path / "in.anf"
    anf_path.write_text("x1*x2 + x3\nx2 + 1\n")
    out_path = tmp_path / "out.anf"
    cli_main(["--anfread", str(anf_path), "--anfwrite", str(out_path),
              "--verb", "0"])
    _, original = parse_system(anf_path.read_text())
    _, processed = parse_system(out_path.read_text())
    import itertools
    for bits in itertools.product([0, 1], repeat=4):
        orig_ok = all(p.evaluate(list(bits)) == 0 for p in original)
        proc_ok = all(p.evaluate(list(bits)) == 0 for p in processed)
        assert orig_ok == proc_ok


def test_gen_then_preprocess_then_final_solve(tmp_path):
    """The full toolchain: generator → preprocessor → DIMACS → solver."""
    inst = tmp_path / "speck.anf"
    assert gen_main(["speck", "--plaintexts", "1", "--rounds", "2",
                     "--seed", "17", "--out", str(inst)]) == 0
    cnf = tmp_path / "speck.cnf"
    code = cli_main(["--anfread", str(inst), "--cnfwrite", str(cnf),
                     "--verb", "0"])
    formula = parse_dimacs(cnf.read_text())
    solver = Solver()
    solver.ensure_vars(formula.n_vars)
    ok = all(solver.add_clause(c) for c in formula.clauses)
    assert ok and solver.solve() is True


def test_module_entry_points_run():
    """`python -m repro` and `python -m repro.gen` exist and print usage."""
    for module in ("repro", "repro.gen"):
        proc = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "usage" in proc.stdout.lower()
