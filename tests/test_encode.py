"""Tests for the symbolic tracing toolkit (builder + bit vectors)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anf import Poly
from repro.encode import (
    SystemBuilder,
    TracedBit,
    add_many,
    adder,
    and_vec,
    const_vector,
    constrain_vector,
    not_vec,
    rotl,
    rotr,
    shr,
    to_int,
    vector_from_int_vars,
    xor_vec,
)

words16 = st.integers(0, 0xFFFF)


def test_traced_bit_xor_and_not():
    a = TracedBit(Poly.variable(0), 1)
    b = TracedBit(Poly.variable(1), 0)
    assert (a ^ b).value == 1
    assert (a & b).value == 0
    assert (~a).value == 0
    assert (~a).poly == Poly.variable(0) + Poly.one()


def test_const_vector_roundtrip():
    assert to_int(const_vector(0xBEEF, 16)) == 0xBEEF


@given(words16, words16)
def test_xor_vec_concrete(a, b):
    va, vb = const_vector(a, 16), const_vector(b, 16)
    assert to_int(xor_vec(va, vb)) == a ^ b


@given(words16, words16)
def test_and_vec_concrete(a, b):
    assert to_int(and_vec(const_vector(a, 16), const_vector(b, 16))) == a & b


@given(words16)
def test_not_vec_concrete(a):
    assert to_int(not_vec(const_vector(a, 16))) == a ^ 0xFFFF


@given(words16, st.integers(0, 15))
def test_rotl_concrete(a, k):
    expected = ((a << k) | (a >> (16 - k))) & 0xFFFF if k else a
    assert to_int(rotl(const_vector(a, 16), k)) == expected


@given(words16, st.integers(0, 15))
def test_rotr_inverse_of_rotl(a, k):
    v = const_vector(a, 16)
    assert to_int(rotr(rotl(v, k), k)) == a


@given(words16, st.integers(0, 16))
def test_shr_concrete(a, k):
    assert to_int(shr(const_vector(a, 16), k)) == a >> k


@given(words16, words16)
def test_adder_concrete(a, b):
    builder = SystemBuilder()
    s = adder(builder, const_vector(a, 16), const_vector(b, 16))
    assert to_int(s) == (a + b) & 0xFFFF
    # Pure constants: no equations generated.
    assert not builder.equations


def test_adder_with_variables_generates_equations():
    builder = SystemBuilder()
    a = vector_from_int_vars(builder, 0xAB, 8)
    b = vector_from_int_vars(builder, 0x47, 8)
    s = adder(builder, a, b)
    assert to_int(s) == (0xAB + 0x47) & 0xFF
    assert builder.equations
    assert builder.check_witness()
    assert max(p.degree() for p in builder.equations) <= 2


@given(st.lists(words16, min_size=2, max_size=4))
def test_add_many_concrete(values):
    builder = SystemBuilder()
    out = add_many(builder, [const_vector(v, 16) for v in values])
    assert to_int(out) == sum(values) & 0xFFFF


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        xor_vec(const_vector(0, 4), const_vector(0, 5))
    builder = SystemBuilder()
    with pytest.raises(ValueError):
        adder(builder, const_vector(0, 4), const_vector(0, 5))


def test_constrain_checks_witness():
    builder = SystemBuilder()
    bit = builder.new_bit(1)
    builder.constrain(bit, 1)
    with pytest.raises(AssertionError):
        builder.constrain(bit, 0)


def test_constrain_vector_adds_equations():
    builder = SystemBuilder()
    v = vector_from_int_vars(builder, 0b101, 3)
    constrain_vector(builder, v, 0b101)
    assert len(builder.equations) == 3
    assert builder.check_witness()


def test_define_caps_expression():
    builder = SystemBuilder()
    a = builder.new_bit(1)
    b = builder.new_bit(1)
    product = a & b
    y = builder.define(product)
    assert y.value == 1
    assert len(y.poly) == 1
    assert builder.check_witness()


def test_define_if_deep_only_when_large():
    builder = SystemBuilder()
    bits = [builder.new_bit(0) for _ in range(4)]
    small = bits[0] ^ bits[1]
    same = builder.define_if_deep(small, max_terms=8)
    assert same is small
    big = bits[0] ^ bits[1] ^ bits[2] ^ bits[3]
    fresh = builder.define_if_deep(big, max_terms=2)
    assert fresh is not big
