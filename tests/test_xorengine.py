"""Tests for the XOR engine (CryptoMiniSat personality)."""

import itertools
import random

import pytest

from repro.sat import SAT, UNSAT, Solver, XorEngine, mk_lit
from repro.sat.types import TRUE


def build(clauses, xors, n_vars):
    solver = Solver()
    solver.ensure_vars(n_vars)
    for c in clauses:
        solver.add_clause(c)
    engine = XorEngine()
    for vs, rhs in xors:
        engine.add_xor(vs, rhs)
    solver.attach_xor_engine(engine)
    return solver, engine


def brute(n_vars, clauses, xors):
    for bits in itertools.product([0, 1], repeat=n_vars):
        if not all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses):
            continue
        if all(sum(bits[v] for v in vs) % 2 == rhs for vs, rhs in xors):
            return list(bits)
    return None


def test_duplicate_vars_cancel_in_xor():
    engine = XorEngine()
    engine.add_xor([1, 1, 2], 1)
    assert engine.xors[0].vars == [2]
    assert engine.xors[0].rhs == 1


def test_gje_detects_inconsistency():
    solver, _ = build([], [([0, 1], 0), ([0, 1], 1)], 2)
    assert solver.solve() is UNSAT


def test_gje_derives_units():
    # x0^x1=1, x0^x1^x2=1 -> x2=0.
    solver, _ = build([], [([0, 1], 1), ([0, 1, 2], 1)], 3)
    assert solver.solve() is SAT
    assert solver.model[2] == 0


def test_xor_propagation_during_search():
    # Chain forcing values through CNF decisions.
    clauses = [[mk_lit(0)]]
    xors = [([0, 1], 1), ([1, 2], 1), ([2, 3], 1)]
    solver, _ = build(clauses, xors, 4)
    assert solver.solve() is SAT
    m = solver.model
    assert m[0] == TRUE and m[1] == 0 and m[2] == TRUE and m[3] == 0


def test_xor_conflict_analysis_learns():
    # UNSAT parity cycle only discoverable through xor reasoning + CNF.
    xors = [([0, 1], 1), ([1, 2], 1), ([0, 2], 1)]
    solver, _ = build([], xors, 3)
    assert solver.solve() is UNSAT


@pytest.mark.parametrize("seed", range(15))
def test_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 8)
    clauses = []
    for _ in range(rng.randint(0, 2 * n)):
        vs = rng.sample(range(n), min(3, n))
        clauses.append([mk_lit(v, rng.random() < 0.5) for v in vs])
    xors = []
    for _ in range(rng.randint(1, n)):
        size = rng.randint(1, min(4, n))
        xors.append((rng.sample(range(n), size), rng.getrandbits(1)))
    expected = brute(n, clauses, xors)
    solver, _ = build(clauses, xors, n)
    verdict = solver.solve()
    if expected is None:
        assert verdict is UNSAT
    else:
        assert verdict is SAT
        bits = [1 if v == TRUE else 0 for v in solver.model]
        for c in clauses:
            assert any(bits[l >> 1] ^ (l & 1) for l in c)
        for vs, rhs in xors:
            assert sum(bits[v] for v in vs) % 2 == rhs
