"""Round-trip model-equivalence harness for the ANF→CNF bridge.

The bridge is where solutions cross representations, so its correctness
is pinned end to end rather than by point tests: hypothesis drives
random ANF systems at widths 63/64/65/128 (straddling the one-limb mask
boundary) through convert → ``sat.solver`` → ``reconstruct_model`` →
evaluate-on-the-original-ANF, asserting

* every SAT model, translated back through the conversion's cut and
  monomial auxiliaries, satisfies the source system;
* every verdict (SAT *and* UNSAT) agrees with brute force over the
  system's support — the instances are built with small supports inside
  wide variable spaces precisely so brute force stays exact;
* the whole round trip stays on the packed mask path (zero tuple
  fallbacks).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anf import AnfSystem, Poly, Ring
from repro.anf.stats import mask_fallback_hits, reset_mask_fallback_hits
from repro.core import (
    AnfToCnf,
    Config,
    Solution,
    propagate,
    reconstruct_model,
)
from repro.sat import Solver
from repro.sat.xorengine import XorEngine

#: Widths straddling the 64-bit limb boundary plus a two-limb width.
WIDTHS = [63, 64, 65, 128]


@st.composite
def anf_case(draw, width):
    """A random sparse ANF system over ``width`` variables.

    The support is small (brute force stays exact) but always includes
    the top variable ``width - 1``, so the monomial masks genuinely
    exercise the claimed width.
    """
    support_size = draw(st.integers(min_value=2, max_value=6))
    extra = draw(
        st.lists(
            st.integers(0, width - 2),
            min_size=support_size - 1,
            max_size=support_size - 1,
            unique=True,
        )
    )
    support = sorted(set(extra) | {width - 1})
    polys = []
    for _ in range(draw(st.integers(1, 4))):
        monomials = []
        for _ in range(draw(st.integers(1, 5))):
            size = draw(st.integers(0, min(3, len(support))))
            monomials.append(
                tuple(
                    sorted(
                        draw(
                            st.sets(
                                st.sampled_from(support),
                                min_size=size,
                                max_size=size,
                            )
                        )
                    )
                )
            )
        p = Poly(monomials)
        if not p.is_zero():
            polys.append(p)
    config = Config(
        karnaugh_limit=draw(st.sampled_from([2, 8])),
        xor_cut_len=draw(st.sampled_from([2, 3, 5])),
        emit_xor_clauses=draw(st.booleans()),
    )
    return support, polys, config


def solve_formula(formula):
    """Run the CDCL solver (with the XOR engine when needed) to a verdict."""
    solver = Solver()
    solver.ensure_vars(formula.n_vars)
    for clause in formula.clauses:
        if not solver.add_clause(clause):
            return False, solver
    if formula.xors:
        engine = XorEngine()
        for variables, rhs in formula.xors:
            engine.add_xor(variables, rhs)
        solver.attach_xor_engine(engine)
        if not solver.ok:
            return False, solver
    return solver.solve(), solver


def brute_force_satisfiable(polys, support):
    """Exact satisfiability over the support (free variables are inert)."""
    n = len(support)
    for combo in range(1 << n):
        amask = 0
        for i, v in enumerate(support):
            if combo >> i & 1:
                amask |= 1 << v
        if all(p.evaluate_mask(amask) == 0 for p in polys):
            return True
    return False


@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_roundtrip_models_match_brute_force(width, data):
    support, polys, config = data.draw(anf_case(width))
    if not polys:
        return
    reset_mask_fallback_hits()
    conv = AnfToCnf(config).convert_polynomials(polys, n_vars=width)
    assert mask_fallback_hits() == 0
    assert conv.n_anf_vars == width

    verdict, solver = solve_formula(conv.formula)
    assert verdict is not None, "unbudgeted solve must reach a verdict"
    expected = brute_force_satisfiable(polys, support)
    assert verdict == expected, (
        "solver verdict {} disagrees with brute force {}".format(
            verdict, expected
        )
    )
    if verdict:
        model = reconstruct_model(conv, solver.model)
        assert set(model) == set(range(width))
        values = [model[v] for v in range(width)]
        solution = Solution(values)
        assert solution.satisfies(polys), (
            "reconstructed model violates {}".format(solution.violated(polys))
        )


@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_roundtrip_through_propagated_system(width, data):
    """Same harness through the AnfSystem/propagation path: units and
    equivalences land in the variable state and convert() emits them as
    unit/equivalence clauses alongside the residual polynomials."""
    support, polys, config = data.draw(anf_case(width))
    if not polys:
        return
    # Pin one support variable and equate two others so the state is
    # non-trivial.
    polys = polys + [Poly.variable(support[0]).add_constant(1)]
    if len(support) >= 3:
        polys = polys + [Poly([(support[1],), (support[2],)])]
    ring = Ring(width)
    try:
        system = AnfSystem(ring, polys)
        propagate(system)
    except Exception:
        # Contradiction during propagation: the system is UNSAT.
        assert not brute_force_satisfiable(polys, support)
        return
    conv = AnfToCnf(config).convert(system)
    verdict, solver = solve_formula(conv.formula)
    assert verdict is not None
    expected = brute_force_satisfiable(polys, support)
    assert verdict == expected
    if verdict:
        model = reconstruct_model(conv, solver.model)
        values = [model[v] for v in range(conv.n_anf_vars)]
        assert Solution(values).satisfies(polys)


@pytest.mark.parametrize("width", WIDTHS)
def test_roundtrip_forced_unique_solution(width):
    """A system with one solution round-trips to exactly that model."""
    top = width - 1
    polys = [
        Poly.variable(top).add_constant(1),  # x_top = 1
        Poly([(top, 3)]).add_constant(1),  # x_top * x_3 = 1 -> x_3 = 1
        Poly([(3,), (5,)]),  # x_3 + x_5 = 0 -> x_5 = 1
        Poly.variable(7),  # x_7 = 0
    ]
    conv = AnfToCnf(Config(karnaugh_limit=8)).convert_polynomials(
        polys, n_vars=width
    )
    verdict, solver = solve_formula(conv.formula)
    assert verdict is True
    model = reconstruct_model(conv, solver.model)
    assert model[top] == 1 and model[3] == 1 and model[5] == 1
    assert model[7] == 0
    assert Solution([model[v] for v in range(width)]).satisfies(polys)


@pytest.mark.parametrize("width", WIDTHS)
def test_roundtrip_unsat_agrees(width):
    top = width - 1
    polys = [
        Poly.variable(top),
        Poly.variable(top).add_constant(1),
    ]
    conv = AnfToCnf(Config()).convert_polynomials(polys, n_vars=width)
    verdict, _ = solve_formula(conv.formula)
    assert verdict is False
    assert not brute_force_satisfiable(polys, [top])
