"""Tests for the configuration object and the paper's parameter set."""

from repro.core import Config, PAPER_CONFIG


def test_paper_parameters_match_section_iv():
    """Section IV: M=30, deltaM=4, D=1, K=8, L=L'=5, C: 10k..100k by 10k."""
    assert PAPER_CONFIG.xl_sample_bits == 30
    assert PAPER_CONFIG.xl_expand_allowance == 4
    assert PAPER_CONFIG.xl_degree == 1
    assert PAPER_CONFIG.karnaugh_limit == 8
    assert PAPER_CONFIG.xor_cut_len == 5
    assert PAPER_CONFIG.clause_cut_len == 5
    assert PAPER_CONFIG.sat_conflict_start == 10000
    assert PAPER_CONFIG.sat_conflict_step == 10000
    assert PAPER_CONFIG.sat_conflict_max == 100000


def test_default_config_is_scaled_down():
    cfg = Config()
    assert cfg.xl_sample_bits < PAPER_CONFIG.xl_sample_bits
    assert cfg.sat_conflict_max <= PAPER_CONFIG.sat_conflict_max
    # But the conversion parameters are the paper's.
    assert cfg.karnaugh_limit == PAPER_CONFIG.karnaugh_limit
    assert cfg.xor_cut_len == PAPER_CONFIG.xor_cut_len


def test_with_creates_modified_copy():
    base = Config()
    derived = base.with_(xl_degree=3)
    assert derived.xl_degree == 3
    assert base.xl_degree == 1
    assert derived.karnaugh_limit == base.karnaugh_limit


def test_all_techniques_enabled_by_default():
    cfg = Config()
    assert cfg.use_xl and cfg.use_elimlin and cfg.use_sat
    assert not cfg.use_groebner  # optional plug-in (paper section V)
    assert not cfg.monomial_facts_from_sat  # paper: aux vars excluded
