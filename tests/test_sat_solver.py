"""Tests for the CDCL SAT solver, including brute-force cross-checks."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    SAT,
    UNKNOWN,
    UNSAT,
    Solver,
    SolverConfig,
    lit_neg,
    luby,
    mk_lit,
)
from repro.sat.types import FALSE, TRUE, UNDEF


def brute_force(n_vars, clauses):
    """All-assignments reference check; returns a model or None."""
    for bits in itertools.product([0, 1], repeat=n_vars):
        ok = True
        for clause in clauses:
            if not any(bits[l >> 1] ^ (l & 1) for l in clause):
                ok = False
                break
        if ok:
            return list(bits)
    return None


def make_solver(clauses, n_vars=0):
    solver = Solver()
    solver.ensure_vars(n_vars)
    ok = True
    for c in clauses:
        ok = solver.add_clause(c) and ok
    return solver, ok


# -- basics ---------------------------------------------------------------------


def test_empty_formula_is_sat():
    solver = Solver()
    assert solver.solve() is SAT


def test_single_unit():
    solver, ok = make_solver([[mk_lit(0)]])
    assert ok and solver.solve() is SAT
    assert solver.model[0] == TRUE


def test_contradictory_units():
    solver, ok = make_solver([[mk_lit(0)], [mk_lit(0, True)]])
    assert not ok or solver.solve() is UNSAT


def test_tautology_dropped():
    solver, ok = make_solver([[mk_lit(0), mk_lit(0, True)]])
    assert ok
    assert solver.solve() is SAT


def test_duplicate_literals_collapse():
    solver, ok = make_solver([[mk_lit(0), mk_lit(0)]])
    assert solver.solve() is SAT
    assert solver.model[0] == TRUE


def test_simple_implication_chain():
    # x0 ∧ (¬x0∨x1) ∧ (¬x1∨x2) forces all true.
    clauses = [[mk_lit(0)], [mk_lit(0, True), mk_lit(1)], [mk_lit(1, True), mk_lit(2)]]
    solver, _ = make_solver(clauses)
    assert solver.solve() is SAT
    assert solver.model == [TRUE, TRUE, TRUE]


def test_unsat_triangle():
    # (x0∨x1) (x0∨¬x1) (¬x0∨x1) (¬x0∨¬x1) is UNSAT.
    clauses = [
        [mk_lit(0), mk_lit(1)],
        [mk_lit(0), mk_lit(1, True)],
        [mk_lit(0, True), mk_lit(1)],
        [mk_lit(0, True), mk_lit(1, True)],
    ]
    solver, _ = make_solver(clauses)
    assert solver.solve() is UNSAT


def test_luby_sequence():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8
    ]


# -- conflict budget (paper section II-D) ------------------------------------------


def php_clauses(holes):
    pigeons = holes + 1
    clauses = []
    for i in range(pigeons):
        clauses.append([mk_lit(i * holes + j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([mk_lit(i1 * holes + j, True), mk_lit(i2 * holes + j, True)])
    return clauses


def test_budget_returns_unknown_and_is_resumable():
    clauses = php_clauses(7)
    solver, _ = make_solver(clauses)
    verdict = solver.solve(conflict_budget=10)
    assert verdict is UNKNOWN
    assert solver.decision_level == 0  # backtracked before returning
    # Resume with a generous budget: PHP(8,7) is UNSAT.
    assert solver.solve(conflict_budget=200000) is UNSAT


def test_budget_exhaustion_keeps_level0_facts_valid():
    clauses = php_clauses(6)
    solver, _ = make_solver(clauses)
    solver.solve(conflict_budget=50)
    for lit in solver.level0_literals():
        assert solver.value_lit(lit) == TRUE


# -- learnt fact extraction ----------------------------------------------------------


def test_level0_literals_from_units():
    solver, _ = make_solver([[mk_lit(3)], [mk_lit(3, True), mk_lit(1, True)]])
    solver.solve(conflict_budget=0)
    lits = set(solver.level0_literals())
    assert mk_lit(3) in lits
    assert mk_lit(1, True) in lits


def test_learnt_binaries_recorded():
    # Force a conflict whose 1UIP clause is binary: x0 -> chain -> conflict.
    rng = random.Random(0)
    clauses = random_3sat(12, 60, rng)
    solver, ok = make_solver(clauses, 12)
    solver.solve(conflict_budget=1000)
    for a, b in solver.learnt_binary_clauses():
        assert a < b


# -- randomized cross-checks ----------------------------------------------------------


def random_3sat(n, m, rng):
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(n), 3)
        clauses.append([mk_lit(v, rng.random() < 0.5) for v in vs])
    return clauses


@pytest.mark.parametrize("seed", range(20))
def test_agrees_with_brute_force_random(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    m = rng.randint(n, 5 * n)
    clauses = random_3sat(n, m, rng)
    expected = brute_force(n, clauses)
    solver, ok = make_solver(clauses, n)
    verdict = solver.solve() if ok else UNSAT
    if expected is None:
        assert verdict is UNSAT
    else:
        assert verdict is SAT
        model = [1 if v == TRUE else 0 for v in solver.model]
        for clause in clauses:
            assert any(model[l >> 1] ^ (l & 1) for l in clause)


@pytest.mark.parametrize("seed", range(10))
def test_model_satisfies_all_clauses(seed):
    rng = random.Random(100 + seed)
    clauses = random_3sat(15, 40, rng)
    solver, ok = make_solver(clauses, 15)
    if not ok:
        return
    if solver.solve() is SAT:
        model = [1 if v == TRUE else 0 for v in solver.model]
        for clause in clauses:
            assert any(model[l >> 1] ^ (l & 1) for l in clause)


def test_unsat_xor_system_via_clauses():
    # x0^x1=1, x1^x2=0, x0^x2=0 sums to 1=0: UNSAT.
    def xor_clauses(a, b, rhs):
        out = []
        for pa, pb in itertools.product([0, 1], repeat=2):
            if pa ^ pb != rhs:
                out.append([mk_lit(a, bool(pa)), mk_lit(b, bool(pb))])
        return out

    clauses = xor_clauses(0, 1, 1) + xor_clauses(1, 2, 0) + xor_clauses(0, 2, 0)
    solver, ok = make_solver(clauses)
    assert not ok or solver.solve() is UNSAT


def test_assumptions_sat_and_conflicting():
    clauses = [[mk_lit(0), mk_lit(1)]]
    solver, _ = make_solver(clauses)
    assert solver.solve(assumptions=[mk_lit(0, True)]) is SAT
    assert solver.model[1] == TRUE
    solver2, _ = make_solver([[mk_lit(0)]])
    assert solver2.solve(assumptions=[mk_lit(0, True)]) is UNSAT


# -- the assumption-UNSAT / global-UNSAT distinction ------------------------


def test_assumption_unsat_is_not_global_unsat():
    # x0 is forced; assuming ¬x0 is UNSAT *under the cube* only.  The
    # pre-fix solver returned a bare UNSAT here, indistinguishable from a
    # global refutation — cube-and-conquer aggregation needs the two told
    # apart.
    solver, _ = make_solver([[mk_lit(0)]])
    assert solver.solve(assumptions=[mk_lit(0, True)]) is UNSAT
    assert solver.assumptions_failed
    assert solver.failed_assumption == mk_lit(0, True)
    assert solver.ok  # the formula itself was never refuted
    # The same solver still answers the unconditional question.
    assert solver.solve() is SAT
    assert not solver.assumptions_failed
    assert solver.failed_assumption is None


def test_global_unsat_does_not_raise_assumption_flag():
    # x0 ∧ ¬x0 is globally UNSAT; the flag must stay down even when
    # assumptions are supplied.
    solver, ok = make_solver([[mk_lit(0)], [mk_lit(0, True)]])
    assert (not ok) or solver.solve(assumptions=[mk_lit(1)]) is UNSAT
    assert not solver.assumptions_failed
    assert solver.failed_assumption is None


def test_contradictory_assumption_list_flags_failure():
    solver, _ = make_solver([[mk_lit(0), mk_lit(1)]], n_vars=2)
    verdict = solver.solve(assumptions=[mk_lit(0), mk_lit(0, True)])
    assert verdict is UNSAT
    assert solver.assumptions_failed
    assert solver.failed_assumption == mk_lit(0, True)
    assert solver.solve() is SAT


def test_empty_assumption_list_is_plain_solve():
    solver, _ = make_solver([[mk_lit(0)]])
    assert solver.solve(assumptions=[]) is SAT
    assert not solver.assumptions_failed


def test_assumption_unsat_derived_by_search():
    # The falsified assumption is only discovered after propagation of
    # earlier assumptions: x0 → x1 (via ¬x0 ∨ x1), assume [x0, ¬x1].
    clauses = [[mk_lit(0, True), mk_lit(1)]]
    solver, _ = make_solver(clauses, n_vars=2)
    verdict = solver.solve(assumptions=[mk_lit(0), mk_lit(1, True)])
    assert verdict is UNSAT
    assert solver.assumptions_failed
    assert solver.solve() is SAT


def test_cube_run_never_leaks_conditional_units_to_level0():
    # After an UNSAT-under-cube run on a globally SAT formula, the
    # level-0 trail must contain only cube-independent facts: every
    # reported unit must hold in every model of the formula.
    clauses = [
        [mk_lit(0)],                      # x0 forced (a genuine fact)
        [mk_lit(1, True), mk_lit(2)],     # x1 → x2
        [mk_lit(2, True), mk_lit(3)],     # x2 → x3
    ]
    solver, _ = make_solver(clauses, n_vars=4)
    assert solver.solve(assumptions=[mk_lit(1), mk_lit(3, True)]) is UNSAT
    assert solver.assumptions_failed
    level0 = set(solver.level0_literals())
    # x1/x2/x3 were only ever assigned under the cube.
    for lit in level0:
        assert (lit >> 1) == 0, "cube-conditional unit leaked: {}".format(lit)
    assert mk_lit(0) in level0
    # Cross-check against brute force: each level-0 unit holds in every
    # model of the bare formula.
    for bits in itertools.product([0, 1], repeat=4):
        if all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses):
            for lit in level0:
                assert bits[lit >> 1] ^ (lit & 1) == 1


def test_units_learnt_under_cube_stay_globally_valid():
    # Level-0 units recorded *during* a cube run come from learnt unit
    # clauses, which are implied by the formula alone — check them
    # against the brute-force model set of the original CNF.
    rng = random.Random(11)
    n = 8
    clauses = random_3sat(n, 30, rng)
    solver, ok = make_solver(clauses, n)
    if not ok:
        return
    solver.solve(assumptions=[mk_lit(0), mk_lit(1, True)], conflict_budget=200)
    level0 = solver.level0_literals()
    models = [
        bits
        for bits in itertools.product([0, 1], repeat=n)
        if all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses)
    ]
    for lit in level0:
        for bits in models:
            assert bits[lit >> 1] ^ (lit & 1) == 1


def test_statistics_populated():
    rng = random.Random(7)
    clauses = random_3sat(20, 85, rng)
    solver, _ = make_solver(clauses, 20)
    solver.solve()
    assert solver.num_decisions > 0
    assert solver.num_propagations > 0
