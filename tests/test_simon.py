"""Tests for the Simon32/64 cipher and its ANF encoding."""

import random

import pytest

from repro.ciphers import simon
from repro.core import Bosphorus, Config, Solution

TEST_KEY = [0x0100, 0x0908, 0x1110, 0x1918]
TEST_PT = (0x6565, 0x6877)
TEST_CT = (0xC69B, 0xE9BB)


def test_published_test_vector():
    assert simon.encrypt(TEST_PT, TEST_KEY, 32) == TEST_CT


def test_decrypt_inverts_encrypt():
    rng = random.Random(3)
    for _ in range(10):
        key = [rng.getrandbits(16) for _ in range(4)]
        pt = (rng.getrandbits(16), rng.getrandbits(16))
        rounds = rng.randint(1, 32)
        assert simon.decrypt(simon.encrypt(pt, key, rounds), key, rounds) == pt


def test_key_schedule_first_words_are_key():
    ks = simon.key_schedule([1, 2, 3, 4], 6)
    assert ks[:4] == [1, 2, 3, 4]
    assert len(ks) == 6


def test_sp_rc_plaintexts_toggle_right_half():
    rng = random.Random(0)
    pts = simon.sp_rc_plaintexts(5, rng)
    assert len(pts) == 5
    base = pts[0]
    for i in range(1, 5):
        assert pts[i][0] == base[0]
        assert pts[i][1] == base[1] ^ (1 << (i - 1))


def test_instance_witness_satisfies_equations():
    inst = simon.generate_instance(2, 5, seed=9)
    assert Solution(inst.witness).satisfies(inst.polynomials)


def test_instance_ciphertexts_match_reference():
    inst = simon.generate_instance(3, 7, seed=4)
    for pt, ct in zip(inst.plaintexts, inst.ciphertexts):
        assert simon.encrypt(pt, inst.key_words, 7) == ct


def test_equations_quadratic():
    inst = simon.generate_instance(2, 6, seed=1)
    assert max(p.degree() for p in inst.polynomials) <= 2


def test_variable_count():
    # 64 key bits + 16 state bits per (round-1) per plaintext.
    inst = simon.generate_instance(2, 6, seed=1)
    assert inst.n_vars == 64 + 2 * (6 - 1) * 16


def test_key_schedule_is_linear_symbolically():
    inst = simon.generate_instance(1, 8, seed=2)
    # All equations involving only key variables must be absent (the key
    # schedule adds no equations); instance equations tie states.
    assert len(inst.polynomials) == (8 - 1) * 16 + 32


def test_one_round_instance_trivially_solvable():
    inst = simon.generate_instance(1, 1, seed=5)
    # One round with known P, C: equations are linear in the key.
    assert all(p.degree() <= 2 for p in inst.polynomials)
    result = Bosphorus(Config(max_iterations=3)).preprocess_anf(
        inst.ring, inst.polynomials
    )
    assert result.status != "unsat"


def test_bosphorus_recovers_consistent_key_small():
    inst = simon.generate_instance(2, 3, seed=12)
    cfg = Config(xl_sample_bits=12, elimlin_sample_bits=12,
                 sat_conflict_start=3000, sat_conflict_max=9000, max_iterations=5)
    result = Bosphorus(cfg).preprocess_anf(inst.ring, inst.polynomials)
    assert result.status == "sat"
    assert result.solution.satisfies(inst.polynomials)
    # The recovered key must encrypt all plaintexts to the right ciphertexts.
    key_words = []
    for w in range(4):
        word = 0
        for b in range(16):
            word |= result.solution[w * 16 + b] << b
        key_words.append(word)
    for pt, ct in zip(inst.plaintexts, inst.ciphertexts):
        assert simon.encrypt(pt, key_words, inst.rounds) == ct
