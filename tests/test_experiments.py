"""Tests for the PAR-2 scorer and the Table II runner."""

import pytest

from repro.core.config import Config
from repro.experiments import (
    PERSONALITIES,
    Problem,
    ScoreLine,
    format_blocks,
    par2_score,
    run_block,
    run_final_solver,
    run_instance,
    simon_problems,
    sr_problems,
)
from repro.satcomp import generators

FAST = Config(
    xl_sample_bits=10,
    elimlin_sample_bits=10,
    sat_conflict_start=500,
    sat_conflict_step=500,
    sat_conflict_max=2000,
    max_iterations=3,
)


# -- PAR-2 ---------------------------------------------------------------------


def test_par2_all_solved():
    line = par2_score([(True, 1.0), (False, 2.0)], timeout=10)
    assert line.par2 == pytest.approx(3.0)
    assert line.solved_sat == 1 and line.solved_unsat == 1


def test_par2_unsolved_penalty():
    line = par2_score([(None, 10.0)], timeout=10)
    assert line.par2 == pytest.approx(20.0)
    assert line.solved == 0


def test_par2_over_timeout_verdict_is_unsolved():
    # SAT-Competition convention: an answer after the limit does not
    # count — it scores the full 2x penalty and is not "solved".
    line = par2_score([(True, 99.0)], timeout=10)
    assert line.par2 == pytest.approx(20.0)
    assert line.solved == 0


def test_par2_exactly_at_timeout_still_counts():
    line = par2_score([(False, 10.0)], timeout=10)
    assert line.par2 == pytest.approx(10.0)
    assert line.solved_unsat == 1


def test_par2_mixed_over_and_under_timeout():
    line = par2_score(
        [(True, 3.0), (True, 11.5), (False, 2.0), (None, 4.0)], timeout=10
    )
    # 3.0 + 20.0 (late SAT) + 2.0 + 20.0 (timeout)
    assert line.par2 == pytest.approx(45.0)
    assert line.solved_sat == 1 and line.solved_unsat == 1


def test_score_format_matches_paper_style():
    assert ScoreLine(4372.0, 89, 0).format() == "4372.0 (89)"
    assert ScoreLine(2105.0, 75, 38).format() == "2105.0 (75+38)"
    assert ScoreLine(4372000.0, 89, 0).format(thousands=True) == "4372.0 (89)"


# -- final solver personalities ----------------------------------------------------


@pytest.mark.parametrize("personality", PERSONALITIES)
def test_final_solver_personalities_agree(personality):
    sat = generators.planted_ksat(12, 40, 3, seed=3)[0]
    unsat = generators.pigeonhole(4)
    v1, model, _ = run_final_solver(sat, personality, timeout_s=20)
    assert v1 is True
    for clause in sat.clauses:
        assert any(model[l >> 1] ^ (l & 1) for l in clause)
    v2, _, _ = run_final_solver(unsat, personality, timeout_s=20)
    assert v2 is False


def test_cms_personality_uses_xors():
    from repro.sat.dimacs import CnfFormula

    f = CnfFormula(3)
    f.add_xor([0, 1], 1)
    f.add_xor([1, 2], 1)
    f.add_xor([0, 2], 1)  # odd cycle: UNSAT by GJE alone
    verdict, _, conflicts = run_final_solver(f, "cms", timeout_s=10)
    assert verdict is False
    assert conflicts == 0  # decided by the XOR engine's GJE, not search


# -- run_instance -------------------------------------------------------------------


def test_run_instance_anf_with_and_without():
    problem = simon_problems(count=1, n_plaintexts=1, rounds=3, seed=3)[0]
    for use_b in (False, True):
        res = run_instance(problem, "minisat", use_b, timeout_s=20,
                           bosphorus_config=FAST)
        assert res.verdict is True
        assert res.model_checked in (True, None)


def test_run_instance_cnf_unsat_by_bosphorus():
    formula = generators.tseitin_parity(6, 3, seed=1)
    problem = Problem.from_cnf("tseitin", formula, expected=False)
    res = run_instance(problem, "minisat", True, timeout_s=20,
                       bosphorus_config=FAST)
    assert res.verdict is False


def test_run_instance_reports_bosphorus_time():
    problem = simon_problems(count=1, n_plaintexts=1, rounds=2, seed=5)[0]
    res = run_instance(problem, "minisat", True, timeout_s=20,
                       bosphorus_config=FAST)
    assert res.bosphorus_seconds >= 0.0


def test_run_block_and_format():
    problems = sr_problems(count=1, n_rounds=1, r=1, c=2, e=4, seed=2)
    block = run_block("SR-[1,1,2,4]", problems, timeout_s=20,
                      bosphorus_config=FAST, personalities=("minisat",))
    table = format_blocks([block])
    assert "SR-[1,1,2,4]" in table
    assert "w/o" in table and "w" in table


def test_invalid_personality_rejected():
    problem = simon_problems(count=1, n_plaintexts=1, rounds=2, seed=1)[0]
    with pytest.raises(ValueError):
        run_instance(problem, "chaff", False, timeout_s=5)
