"""Tests for DRAT proof logging and the RUP checker."""

import io
import random

import pytest

from repro.sat import DratProof, Solver, XorEngine, check_rup, mk_lit
from repro.satcomp import generators


def solve_with_proof(formula):
    solver = Solver()
    solver.proof = DratProof()
    solver.ensure_vars(formula.n_vars)
    ok = True
    for c in formula.clauses:
        if not solver.add_clause(c):
            ok = False
            break
    verdict = solver.solve() if ok else False
    return solver, verdict


def test_pigeonhole_proof_checks():
    for holes in (3, 4, 5):
        formula = generators.pigeonhole(holes)
        solver, verdict = solve_with_proof(formula)
        assert verdict is False
        assert solver.proof.ends_with_empty
        assert check_rup(formula.n_vars, formula.clauses, solver.proof)


def test_tseitin_proof_checks():
    formula = generators.tseitin_parity(12, 3, seed=5)
    solver, verdict = solve_with_proof(formula)
    assert verdict is False
    assert check_rup(formula.n_vars, formula.clauses, solver.proof)


@pytest.mark.parametrize("seed", range(10))
def test_random_unsat_proofs_check(seed):
    rng = random.Random(seed)
    n = rng.randint(5, 9)
    from repro.sat.dimacs import CnfFormula

    formula = CnfFormula(n)
    for _ in range(8 * n):
        vs = rng.sample(range(n), 3)
        formula.add_clause([mk_lit(v, rng.random() < 0.5) for v in vs])
    solver, verdict = solve_with_proof(formula)
    if verdict is False:
        assert check_rup(formula.n_vars, formula.clauses, solver.proof)


def test_bogus_proof_rejected():
    formula = generators.pigeonhole(3)
    proof = DratProof()
    proof.add([mk_lit(0)])  # not RUP for PHP out of thin air? check:
    proof.add_empty()
    # The empty clause is not RUP after only that bogus step.
    assert not check_rup(formula.n_vars, formula.clauses, proof)


def test_proof_without_empty_clause_rejected():
    formula = generators.pigeonhole(3)
    solver, verdict = solve_with_proof(formula)
    assert verdict is False
    trimmed = DratProof()
    trimmed.steps = [s for s in solver.proof.steps if s[1]][:3]
    assert not check_rup(formula.n_vars, formula.clauses, trimmed)


def test_deletions_are_recorded_and_tolerated():
    # Force DB reductions with a small keep budget on a hard instance.
    from repro.sat.solver import SolverConfig

    formula = generators.pigeonhole(6)
    solver = Solver(SolverConfig(learnt_keep_base=50, learnt_keep_step=10))
    solver.proof = DratProof()
    solver.ensure_vars(formula.n_vars)
    for c in formula.clauses:
        solver.add_clause(c)
    assert solver.solve() is False
    assert any(op == "d" for op, _ in solver.proof.steps)
    assert check_rup(formula.n_vars, formula.clauses, solver.proof)


def test_write_format():
    proof = DratProof()
    proof.add([mk_lit(0), mk_lit(1, True)])
    proof.delete([mk_lit(0)])
    proof.add_empty()
    buf = io.StringIO()
    proof.write(buf)
    lines = buf.getvalue().splitlines()
    assert lines[0] == "1 -2 0"
    assert lines[1] == "d 1 0"
    assert lines[2] == "0"


def test_xor_engine_conflicts_with_proof_logging():
    solver = Solver()
    solver.proof = DratProof()
    with pytest.raises(ValueError):
        solver.attach_xor_engine(XorEngine())


def test_trivial_unsat_from_units():
    from repro.sat.dimacs import CnfFormula

    formula = CnfFormula(1)
    formula.add_clause([mk_lit(0)])
    formula.add_clause([mk_lit(0, True)])
    solver, verdict = solve_with_proof(formula)
    assert verdict is False
    assert check_rup(formula.n_vars, formula.clauses, solver.proof)
