"""Tests for the Boolean-ring Buchberger engine (paper section V)."""

import itertools

import pytest

from repro.anf import Poly, parse_system
from repro.core import buchberger, normal_form, s_polynomial


def polys_of(text):
    _, polys = parse_system(text)
    return polys


def test_normal_form_reduces_leading_terms():
    # Deglex leading monomial of x1 + x2 is x2, so the rewrite is x2 -> x1.
    basis = polys_of("x1 + x2")
    p = polys_of("x2*x3 + 1")[0]
    r = normal_form(p, basis)
    assert r == polys_of("x1*x3 + 1")[0]


def test_normal_form_zero_for_multiples():
    g = polys_of("x1*x2 + x3")[0]
    p = g * Poly.variable(4) + g
    assert normal_form(p, [g]).is_zero()


def test_normal_form_boolean_collapse_guard():
    # Reducer x1x2 + x1: multiplying by x2 collapses (x2*(x1x2+x1) = 0),
    # so x1x2 cannot be reduced by it via multiplier x2... direct division
    # (multiplier 1 on matching lm) must still work.
    g = polys_of("x1*x2 + x1")[0]
    p = polys_of("x1*x2")[0]
    r = normal_form(p, [g])
    assert r == Poly.variable(1)


def test_s_polynomial():
    f = polys_of("x1*x2 + x3")[0]
    g = polys_of("x2*x4 + 1")[0]
    s = s_polynomial(f, g)
    # lcm = x1x2x4: x4*f + x1*g = x3x4 + x1.
    assert s == polys_of("x3*x4 + x1")[0]


def test_buchberger_detects_unsat():
    result = buchberger(polys_of("x1\nx1 + 1"))
    assert result.contradiction
    assert result.facts == [Poly.one()]


def test_buchberger_solves_triangular_system():
    result = buchberger(polys_of("x1*x2 + 1\nx2 + x3\nx3 + 1"))
    assert result.complete
    # The ideal forces x1 = x2 = x3 = 1; the basis must contain units.
    units = {p.as_unit() for p in result.basis if p.as_unit()}
    assert (3, 1) in units or any(val == 1 for _, val in units)


def test_basis_members_vanish_on_solutions():
    text = "x1*x2 + x3\nx2 + x3 + 1"
    polys = polys_of(text)
    result = buchberger(polys)
    solutions = [
        bits
        for bits in itertools.product([0, 1], repeat=4)
        if all(p.evaluate(list(bits)) == 0 for p in polys)
    ]
    assert solutions
    for g in result.basis:
        for sol in solutions:
            assert g.evaluate(list(sol)) == 0


def test_budget_cuts_off():
    # A dense random-ish system with a tiny pair budget must stop early.
    polys = polys_of("\n".join(
        "x{}*x{} + x{}*x{} + x{}".format(i, i + 1, i + 2, i + 3, i + 4)
        for i in range(1, 12)
    ))
    result = buchberger(polys, max_pairs=5)
    assert not result.complete
    assert result.pairs_processed <= 5


def test_facts_are_linear_or_monomial():
    result = buchberger(polys_of("x1*x2 + 1\nx2 + x3"))
    for fact in result.facts:
        assert fact.is_linear() or fact.as_monomial_assignment() is not None


def test_groebner_basis_reduces_members_to_zero():
    """Definitional property: every S-polynomial reduces to zero."""
    polys = polys_of("x1*x2 + x3\nx2*x3 + x1\nx1 + x2 + x3")
    result = buchberger(polys)
    if not result.complete:
        pytest.skip("budget hit")
    basis = result.basis
    for i in range(len(basis)):
        for j in range(i + 1, len(basis)):
            s = s_polynomial(basis[i], basis[j])
            assert normal_form(s, basis).is_zero()
