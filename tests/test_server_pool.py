"""The persistent worker pool: submission, cancellation, deadlines, and
death isolation.

The pool generalises the batch scheduler's fork-shipped one-shot pools
to a long-lived service pool, so the invariants under test mirror the
batch layer's: a worker dying mid-job fails *that job only* and the slot
respawns; cancellation is cooperative and lands within one conflict
slice; deadlines are per-job and start when the job does.
"""

import os
import random
import time

import pytest

import repro.server.pool as pool_mod
from repro.server.jobs import JobSpec, execute_job
from repro.server.pool import WorkerPool

EASY = "p cnf 1 1\n1 0\n"
UNSAT = "p cnf 1 2\n1 0\n-1 0\n"


def _hard_instance(n=200, ratio=4.26, seed=7):
    """Random 3-SAT near the phase transition: enough search to keep a
    worker busy for seconds, so cancellation can land mid-solve."""
    rng = random.Random(seed)
    m = int(n * ratio)
    lines = ["p cnf {} {}".format(n, m)]
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), 3)
        lines.append(
            " ".join(str(v if rng.random() < 0.5 else -v) for v in vs) + " 0"
        )
    return "\n".join(lines) + "\n"


HARD = _hard_instance()


def test_submit_wait_round_trip():
    with WorkerPool(jobs=1) as pool:
        sat = pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
        unsat = pool.submit(JobSpec(fmt="dimacs", text=UNSAT, preprocess=False))
        assert pool.wait(sat, timeout=60)["verdict"] == "sat"
        assert pool.wait(unsat, timeout=60)["verdict"] == "unsat"
        stats = pool.stats()
        assert stats["completed"] == 2
        assert stats["failed"] == 0


def test_event_stream_order():
    events = []
    with WorkerPool(jobs=1) as pool:
        job = pool.submit(
            JobSpec(fmt="dimacs", text=EASY, preprocess=False),
            on_event=lambda kind, payload: events.append((kind, payload)),
        )
        result = pool.wait(job, timeout=60)
    kinds = [k for k, _ in events]
    assert kinds[-1] == "result"
    assert set(kinds[:-1]) == {"progress"}
    assert events[-1][1] == result


def test_anf_job_with_shared_cache(tmp_path):
    anf = "x0*x1 + x2 + 1\nx1*x2 + x0\nx0 + x1 + x2 + 1\n"
    with WorkerPool(jobs=1, cache_dir=str(tmp_path)) as pool:
        cold = pool.wait(pool.submit(JobSpec(fmt="anf", text=anf)), timeout=120)
        warm = pool.wait(pool.submit(JobSpec(fmt="anf", text=anf)), timeout=120)
    assert cold["verdict"] == warm["verdict"] == "sat"
    assert warm["stats"]["conversion_disk_hits"] > 0
    assert warm["cnf_sha256"] == cold["cnf_sha256"]


def test_running_job_cancel_lands_within_a_slice():
    with WorkerPool(jobs=1) as pool:
        job = pool.submit(JobSpec(fmt="dimacs", text=HARD, preprocess=False))
        time.sleep(0.4)  # let the solve get going
        assert pool.cancel(job)
        t0 = time.monotonic()
        result = pool.wait(job, timeout=30)
        elapsed = time.monotonic() - t0
    assert result["verdict"] == "cancelled"
    # One conflict slice is 500 conflicts — far under a second on this
    # instance; 5s is a generous bound that still proves cooperativity.
    assert elapsed < 5.0


def test_queued_job_cancel_resolves_immediately():
    with WorkerPool(jobs=1) as pool:
        running = pool.submit(JobSpec(fmt="dimacs", text=HARD, preprocess=False))
        queued = pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
        assert pool.cancel(queued)
        result = pool.wait(queued, timeout=5)
        assert result["verdict"] == "cancelled"
        pool.cancel(running)
        pool.wait(running, timeout=30)


def test_cancel_unknown_or_finished_job_is_false():
    with WorkerPool(jobs=1) as pool:
        job = pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
        pool.wait(job, timeout=60)
        assert pool.cancel(job) is False
        assert pool.cancel(999) is False


def test_deadline_reports_timeout_verdict():
    with WorkerPool(jobs=1) as pool:
        job = pool.submit(
            JobSpec(fmt="dimacs", text=HARD, preprocess=False, timeout_s=0.3)
        )
        result = pool.wait(job, timeout=30)
    assert result["verdict"] in ("timeout", "sat", "unsat")
    # On this instance 0.3s is far from enough; accept a verdict only if
    # the solver genuinely beat the clock (never seen, but not illegal).
    assert result["verdict"] == "timeout"


def test_job_exception_is_isolated():
    with WorkerPool(jobs=1) as pool:
        bad = pool.submit(JobSpec(fmt="dimacs", text="p cnf not-a-header"))
        good = pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
        bad_result = pool.wait(bad, timeout=60)
        good_result = pool.wait(good, timeout=60)
    assert bad_result["verdict"] == "error"
    assert "error" in bad_result
    assert good_result["verdict"] == "sat"


def test_spec_validation_rejects_bad_jobs():
    with pytest.raises(ValueError):
        JobSpec(fmt="cnf", text=EASY).validate()
    with pytest.raises(ValueError):
        JobSpec(fmt="dimacs", text="   ").validate()
    with pytest.raises(ValueError):
        JobSpec(fmt="dimacs", text=EASY, config={"nope": 1}).validate()
    with pytest.raises(ValueError):
        JobSpec(fmt="dimacs", text=EASY, config={"cache_dir": "/x"}).validate()


# -- death isolation ---------------------------------------------------------


def _exploding_execute_job(spec, cache_dir=None, cancel=None, progress=None):
    if spec.text.startswith("c BOOM"):
        os._exit(1)  # hard crash mid-job, as an OOM-kill would
    return execute_job(
        spec, cache_dir=cache_dir, cancel=cancel, progress=progress
    )


def test_worker_death_mid_job_fails_only_that_job(monkeypatch):
    # fork start method so the monkeypatched execute_job is inherited.
    monkeypatch.setattr(pool_mod, "execute_job", _exploding_execute_job)
    with WorkerPool(jobs=2, start_method="fork") as pool:
        boom = pool.submit(
            JobSpec(fmt="dimacs", text="c BOOM\n" + EASY, preprocess=False)
        )
        good = [
            pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
            for _ in range(4)
        ]
        boom_result = pool.wait(boom, timeout=60)
        assert boom_result["verdict"] == "error"
        assert "worker-died" in boom_result["error"]
        for job in good:
            assert pool.wait(job, timeout=60)["verdict"] == "sat"
        stats = pool.stats()
        assert stats["respawns"] >= 1
        assert stats["alive"] == 2
        assert stats["failed"] == 1


def test_idle_worker_death_respawns_cleanly():
    # A worker killed while *blocked on its queue* dies holding that
    # queue's read lock; the per-worker-queue design discards the queue
    # with the worker, so the respawned slot must keep serving.
    with WorkerPool(jobs=1, start_method="fork") as pool:
        first = pool.wait(
            pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False)),
            timeout=60,
        )
        assert first["verdict"] == "sat"
        pool._workers[0].terminate()
        deadline = time.monotonic() + 10
        while pool.stats()["respawns"] == 0:
            assert time.monotonic() < deadline, "watchdog never respawned"
            time.sleep(0.05)
        second = pool.wait(
            pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False)),
            timeout=60,
        )
        assert second["verdict"] == "sat"


def test_pool_rejects_submit_after_close():
    pool = WorkerPool(jobs=1)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit(JobSpec(fmt="dimacs", text=EASY, preprocess=False))
