"""Tests for the master ANF system and the parity union-find."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anf import AnfSystem, ContradictionError, Poly, Ring, VariableState
from repro.anf.parser import parse_polynomial


def P(text, n=8):
    return parse_polynomial(text, Ring(n))


# -- VariableState -------------------------------------------------------------


def test_assign_and_value():
    st_ = VariableState(4)
    assert st_.value(0) is None
    assert st_.assign(0, 1) is True
    assert st_.value(0) == 1
    assert st_.assign(0, 1) is False  # not new


def test_assign_conflict_raises():
    st_ = VariableState(2)
    st_.assign(0, 1)
    with pytest.raises(ContradictionError):
        st_.assign(0, 0)


def test_equate_propagates_value():
    st_ = VariableState(4)
    st_.assign(1, 1)
    st_.equate(0, 1, 1)  # x0 = ¬x1
    assert st_.value(0) == 0


def test_equate_then_assign_propagates_to_class():
    st_ = VariableState(4)
    st_.equate(0, 1, 0)
    st_.equate(1, 2, 1)
    st_.assign(2, 0)
    assert st_.value(0) == 1
    assert st_.value(1) == 1


def test_equate_conflict_raises():
    st_ = VariableState(3)
    st_.equate(0, 1, 0)
    with pytest.raises(ContradictionError):
        st_.equate(0, 1, 1)


def test_equate_value_conflict():
    st_ = VariableState(3)
    st_.assign(0, 0)
    st_.assign(1, 1)
    with pytest.raises(ContradictionError):
        st_.equate(0, 1, 0)


def test_equate_consistent_values_ok():
    st_ = VariableState(3)
    st_.assign(0, 0)
    st_.assign(1, 1)
    assert st_.equate(0, 1, 1) is True


def test_substitution_for():
    st_ = VariableState(4)
    st_.assign(0, 1)
    st_.equate(1, 2, 1)
    assert st_.substitution_for(0) == Poly.one()
    sub = st_.substitution_for(1)
    root, _ = st_.find(1)
    if root != 1:
        assert sub == Poly.variable(2) + Poly.one()
    assert st_.substitution_for(3) is None


def test_as_assignment_respects_equivalences():
    st_ = VariableState(4)
    st_.equate(0, 1, 1)
    values = st_.as_assignment(4)
    assert values[0] == values[1] ^ 1


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 1)),
                max_size=12))
def test_union_find_transitive_consistency(ops):
    """After any sequence of merges, x = root ⊕ parity is self-consistent."""
    st_ = VariableState(8)
    try:
        for a, b, c in ops:
            st_.equate(a, b, c)
    except ContradictionError:
        return
    # find() must be stable and consistent with the recorded relations.
    for v in range(8):
        root, parity = st_.find(v)
        root2, parity2 = st_.find(v)
        assert (root, parity) == (root2, parity2)
        rr, rp = st_.find(root)
        assert rr == root and rp == 0


# -- AnfSystem -------------------------------------------------------------------


def test_add_dedupes():
    sys_ = AnfSystem(Ring(4))
    p = P("x1 + x2")
    assert sys_.add(p) is True
    assert sys_.add(p) is False
    assert len(sys_) == 1


def test_add_zero_ignored():
    sys_ = AnfSystem(Ring(2))
    assert sys_.add(Poly.zero()) is False
    assert len(sys_) == 0


def test_add_one_raises():
    sys_ = AnfSystem(Ring(2))
    with pytest.raises(ContradictionError):
        sys_.add(Poly.one())


def test_occurrence_lists():
    sys_ = AnfSystem(Ring(5), [P("x1*x2 + x3"), P("x3 + x4")])
    assert sys_.occurrences(3) == {0, 1}
    assert sys_.occurrences(1) == {0}
    assert sys_.occurrence_count(4) == 1
    assert sys_.occurrence_count(0) == 0


def test_normalize_uses_state():
    sys_ = AnfSystem(Ring(4), [P("x1*x2 + x3")])
    sys_.state.assign(1, 1)
    assert sys_.normalize(P("x1*x2 + x3")) == P("x2 + x3")


def test_normalize_equivalence():
    sys_ = AnfSystem(Ring(4))
    sys_.state.equate(1, 2, 1)  # x1 = ¬x2
    normalized = sys_.normalize(P("x1 + x2"))
    assert normalized == Poly.one() or normalized == P("x1 + x2")
    # x1 + x2 = (x2+1) + x2 = 1 under the equivalence.
    assert sys_.normalize(P("x1 + x2")).is_one()


def test_check_assignment():
    sys_ = AnfSystem(Ring(3), [P("x1 + x2 + 1")])
    assert sys_.check_assignment([0, 1, 0])
    assert not sys_.check_assignment([0, 1, 1])


def test_replace_all_rebuilds_occurrences():
    sys_ = AnfSystem(Ring(4), [P("x1 + x2")])
    sys_.replace_all([P("x2 + x3")])
    assert sys_.occurrences(1) == set()
    assert sys_.occurrences(3) == {0}


def test_ring_grows_on_add():
    sys_ = AnfSystem(Ring(1))
    sys_.add(P("x5 + 1", n=6))
    assert sys_.ring.n_vars >= 6
