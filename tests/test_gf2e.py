"""Tests for GF(2^e) arithmetic, concrete and symbolic."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import Poly
from repro.ciphers.gf2e import GF2e

F16 = GF2e(4)
F256 = GF2e(8)

elem16 = st.integers(0, 15)


def test_modulus_defaults():
    assert F16.modulus == 0b10011
    assert F256.modulus == 0b100011011


def test_bad_modulus_rejected():
    with pytest.raises(ValueError):
        GF2e(4, modulus=0b100011011)


def test_mul_known_values_aes():
    # AES: 0x57 * 0x83 = 0xc1 (FIPS-197 example).
    assert F256.mul(0x57, 0x83) == 0xC1
    # 0x57 * 0x13 = 0xfe.
    assert F256.mul(0x57, 0x13) == 0xFE


def test_inverse_aes():
    assert F256.inverse(0) == 0
    for x in [1, 2, 0x53, 0xCA, 0xFF]:
        assert F256.mul(x, F256.inverse(x)) == 1


def test_inverse_all_of_gf16():
    for x in range(1, 16):
        assert F16.mul(x, F16.inverse(x)) == 1


def test_pow():
    assert F16.pow(2, 0) == 1
    assert F16.pow(2, 4) == F16.mul(F16.mul(2, 2), F16.mul(2, 2))


@given(elem16, elem16)
def test_mul_commutative(a, b):
    assert F16.mul(a, b) == F16.mul(b, a)


@given(elem16, elem16, elem16)
def test_mul_associative(a, b, c):
    assert F16.mul(F16.mul(a, b), c) == F16.mul(a, F16.mul(b, c))


@given(elem16, elem16, elem16)
def test_distributive(a, b, c):
    assert F16.mul(a, b ^ c) == F16.mul(a, b) ^ F16.mul(a, c)


@given(elem16)
def test_square_is_self_product(a):
    assert F16.square(a) == F16.mul(a, a)


@given(elem16)
def test_frobenius_additivity(a):
    # Squaring is linear over GF(2): (a+b)^2 = a^2 + b^2.
    for b in range(16):
        assert F16.square(a ^ b) == F16.square(a) ^ F16.square(b)


# -- symbolic consistency ---------------------------------------------------------


def sym_of(value, e=4):
    return [Poly.constant((value >> i) & 1) for i in range(e)]


def sym_value(polys):
    out = 0
    for i, p in enumerate(polys):
        assert p.is_constant()
        out |= (1 if p.is_one() else 0) << i
    return out


@given(elem16, elem16)
def test_sym_mul_matches_concrete(a, b):
    assert sym_value(F16.sym_mul(sym_of(a), sym_of(b))) == F16.mul(a, b)


@given(elem16)
def test_sym_square_matches_concrete(a):
    assert sym_value(F16.sym_square(sym_of(a))) == F16.square(a)


@given(elem16, elem16)
def test_sym_scale_matches_concrete(a, c):
    assert sym_value(F16.sym_scale(sym_of(a), c)) == F16.mul(a, c)


def test_sym_mul_on_variables_is_bilinear():
    # Symbolic product of two variable vectors yields quadratic bits.
    a = [Poly.variable(i) for i in range(4)]
    b = [Poly.variable(4 + i) for i in range(4)]
    prod = F16.sym_mul(a, b)
    assert all(p.degree() == 2 for p in prod if not p.is_zero())


def test_element_bits_roundtrip():
    for x in range(16):
        assert F16.bits_to_element(F16.element_to_bits(x)) == x
