"""Tests for the bosphorus-py command-line interface."""

import os

import pytest

from repro.cli import build_parser, config_from_args, main

PAPER_EXAMPLE = """\
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
"""


@pytest.fixture
def anf_file(tmp_path):
    path = tmp_path / "problem.anf"
    path.write_text(PAPER_EXAMPLE)
    return str(path)


@pytest.fixture
def cnf_file(tmp_path):
    path = tmp_path / "problem.cnf"
    path.write_text("p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n")
    return str(path)


def test_requires_input(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_anf_solve_paper_example(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve"])
    out = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in out
    assert "v " in out
    # The unique solution: x1..x4 true (DIMACS vars 2..5), x5 false (var 6).
    model_line = [l for l in out.splitlines() if l.startswith("v ")][0]
    lits = set(model_line.split()[1:-1])
    assert {"2", "3", "4", "5", "-6"} <= lits


def test_unsat_detection(tmp_path, capsys):
    path = tmp_path / "unsat.anf"
    path.write_text("x1\nx1 + 1\n")
    code = main(["--anfread", str(path)])
    assert code == 20
    assert "s UNSATISFIABLE" in capsys.readouterr().out


def test_anfwrite_output(anf_file, tmp_path, capsys):
    out_path = tmp_path / "out.anf"
    main(["--anfread", anf_file, "--anfwrite", str(out_path)])
    text = out_path.read_text()
    assert "x1 + 1" in text  # the processed ANF contains the unit facts


def test_cnfwrite_output(anf_file, tmp_path, capsys):
    out_path = tmp_path / "out.cnf"
    main(["--anfread", anf_file, "--cnfwrite", str(out_path)])
    assert out_path.read_text().splitlines()[1].startswith("p cnf")


def test_cnf_preprocessing_roundtrip(cnf_file, tmp_path, capsys):
    out_path = tmp_path / "processed.cnf"
    code = main(["--cnfread", cnf_file, "--cnfwrite", str(out_path), "--solve"])
    out = capsys.readouterr().out
    assert code in (0, 10)
    assert out_path.exists()


def test_parameter_flags_map_to_config():
    parser = build_parser()
    args = parser.parse_args([
        "--anfread", "x.anf", "-m", "20", "--dm", "3", "--xldeg", "2",
        "--karn", "6", "--cutnum", "4", "--clausecut", "7",
        "--confl", "123", "--maxconfl", "456", "--maxiters", "2",
        "--no-elimlin", "--groebner", "--seed", "9",
    ])
    config = config_from_args(args)
    assert config.xl_sample_bits == 20
    assert config.xl_expand_allowance == 3
    assert config.xl_degree == 2
    assert config.karnaugh_limit == 6
    assert config.xor_cut_len == 4
    assert config.clause_cut_len == 7
    assert config.sat_conflict_start == 123
    assert config.sat_conflict_max == 456
    assert config.max_iterations == 2
    assert config.use_xl and not config.use_elimlin and config.use_sat
    assert config.use_groebner
    assert config.seed == 9


def test_solver_personality_flag(anf_file, capsys):
    for solver in ("minisat", "lingeling", "cms"):
        code = main(["--anfread", anf_file, "--solve", "--solver", solver])
        assert code == 10


NO_LEARN = ["--no-sat", "--no-xl", "--no-elimlin"]


def test_portfolio_flag_sequential(anf_file, capsys):
    # Learning disabled so Bosphorus cannot decide the instance itself —
    # the final solve must come from the portfolio race.
    code = main(["--anfread", anf_file, "--solve", "--portfolio",
                 "--jobs", "1", "--verb", "2"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in out
    assert "c portfolio:" in out
    assert "[winner]" in out
    model_line = [l for l in out.splitlines() if l.startswith("v ")][0]
    lits = set(model_line.split()[1:-1])
    assert {"2", "3", "4", "5", "-6"} <= lits


def test_portfolio_flag_parallel(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve", "--portfolio",
                 "--jobs", "2"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in out


def test_backend_flag_accepts_specs(anf_file, capsys):
    for spec in ("minisat", "cms@3"):
        code = main(["--anfread", anf_file, "--solve", "--backend", spec]
                    + NO_LEARN)
        assert code == 10, spec
        assert "s SATISFIABLE" in capsys.readouterr().out


def test_backend_flag_unavailable_binary(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve",
                 "--backend", "dimacs:no-such-solver-binary"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 0
    assert "backend unavailable" in out
    assert "s UNKNOWN" in out


def test_cube_flag_sequential(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve", "--cube",
                 "--cube-depth", "2", "--jobs", "1", "--verb", "2"]
                + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in out
    assert "c cube:" in out
    assert "[winner]" in out
    model_line = [l for l in out.splitlines() if l.startswith("v ")][0]
    lits = set(model_line.split()[1:-1])
    assert {"2", "3", "4", "5", "-6"} <= lits


def test_cube_flag_unsat(tmp_path, capsys):
    path = tmp_path / "unsat.anf"
    path.write_text("x1*x2 + 1\nx1*x2\n")
    code = main(["--anfread", str(path), "--solve", "--cube"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 20
    assert "s UNSATISFIABLE" in out


def test_cube_composes_with_portfolio(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve", "--cube", "--portfolio",
                 "--cube-depth", "1", "--jobs", "1"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 10
    assert "s SATISFIABLE" in out


def test_cube_flag_unavailable_backend(anf_file, capsys):
    code = main(["--anfread", anf_file, "--solve", "--cube",
                 "--backend", "dimacs:no-such-solver-binary"] + NO_LEARN)
    out = capsys.readouterr().out
    assert code == 0
    assert "backend unavailable" in out
    assert "s UNKNOWN" in out


def test_jobs_flag_default():
    parser = build_parser()
    args = parser.parse_args(["--anfread", "x.anf"])
    assert args.jobs == 1 and not args.portfolio and args.backend is None
    assert not args.cube and args.cube_depth == 4


def test_quiet_mode(anf_file, capsys):
    main(["--anfread", anf_file, "--verb", "0"])
    out = capsys.readouterr().out
    assert "c bosphorus-py" not in out
