"""Tests for cactus plots and markdown reporting."""

from repro.experiments import (
    ScoreLine,
    cactus_points,
    markdown_table,
    render_cactus,
    solved_counts,
)
from repro.experiments.tables import TableBlock


def test_cactus_points_sorted_cumulative():
    runs = [(True, 3.0), (None, 10.0), (True, 1.0), (False, 2.0)]
    pts = cactus_points(runs)
    assert pts == [(1.0, 1), (2.0, 2), (3.0, 3)]


def test_cactus_points_empty():
    assert cactus_points([(None, 5.0)]) == []


def test_render_cactus_contains_markers_and_legend():
    curves = {
        "plain": [(True, 1.0), (True, 4.0)],
        "bosphorus": [(True, 0.5), (True, 1.5)],
    }
    plot = render_cactus(curves, width=30, height=6, timeout=5.0)
    assert "o = bosphorus" in plot
    assert "x = plain" in plot
    assert "> time" in plot


def test_render_cactus_handles_no_solves():
    plot = render_cactus({"none": [(None, 5.0)]}, timeout=5.0)
    assert "time" in plot


def _block():
    scores = {
        ("minisat", False): ScoreLine(100.0, 1, 0),
        ("minisat", True): ScoreLine(50.0, 2, 0),
    }
    return TableBlock("Demo", 2, scores, ("minisat",))


def test_markdown_table_shape():
    text = markdown_table([_block()])
    lines = text.splitlines()
    assert lines[0] == "| Problem | | MiniSat |"
    assert "Demo (2)" in lines[2]
    assert "| w |" in lines[3].replace("  ", " ")


def test_markdown_table_empty():
    assert markdown_table([]) == ""


def test_solved_counts():
    assert solved_counts(_block()) == {"minisat": (1, 2)}
