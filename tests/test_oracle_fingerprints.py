"""Tier-1 pin check: the frozen differential oracles are verbatim.

The repo's differential guarantees anchor on a handful of oracle
functions kept at seed semantics (``GF2Matrix.rref_gj``, the scalar
ANF→CNF converter twins, the scalar linearization codecs,
``monomial.tuple_oracle``).  ``tests/oracle_fingerprints.json`` pins
each one's normalized-AST hash; this test recomputes them so any
semantic edit fails tier-1 even when lint is not run.  A deliberate,
reviewed oracle change regenerates the pins with
``PYTHONPATH=src python -m repro.analysis --update-fingerprints``.
"""

from pathlib import Path

from repro.analysis import fingerprint as fp
from repro.analysis.config import FINGERPRINTS_PATH, ORACLE_FUNCTIONS

ROOT = Path(__file__).resolve().parents[1]


def test_every_oracle_is_pinned():
    pins = fp.load_fingerprints(ROOT / FINGERPRINTS_PATH)
    expected = {fp.oracle_key(f, q) for f, q in ORACLE_FUNCTIONS}
    assert set(pins) == expected
    assert all(value.startswith(fp.HASH_PREFIX) for value in pins.values())


def test_oracle_fingerprints_match_pins():
    pins = fp.load_fingerprints(ROOT / FINGERPRINTS_PATH)
    actual = fp.compute_fingerprints(ROOT, ORACLE_FUNCTIONS)
    problems = fp.diff_fingerprints(pins, actual)
    assert problems == [], "\n".join(problems)
