"""Unit and property tests for repro.anf.polynomial.Poly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import Poly, parse_polynomial, Ring

N_VARS = 5

monomials = st.lists(st.integers(0, N_VARS - 1), max_size=3).map(
    lambda vs: tuple(sorted(set(vs)))
)
polys = st.lists(monomials, max_size=6).map(Poly)
assignments = st.lists(st.integers(0, 1), min_size=N_VARS, max_size=N_VARS)


def P(text):
    return parse_polynomial(text, Ring(N_VARS + 1))


# -- construction ------------------------------------------------------------


def test_duplicate_monomials_cancel():
    assert Poly([(1,), (1,)]).is_zero()


def test_triple_monomial_survives_once():
    assert Poly([(1,), (1,), (1,)]) == Poly.variable(1)


def test_zero_one_constants():
    assert Poly.zero().is_zero()
    assert Poly.one().is_one()
    assert Poly.constant(0).is_zero()
    assert Poly.constant(1).is_one()
    assert Poly.constant(2).is_zero()


def test_is_constant():
    assert Poly.zero().is_constant()
    assert Poly.one().is_constant()
    assert not Poly.variable(0).is_constant()


# -- queries -------------------------------------------------------------------


def test_degree():
    assert Poly.zero().degree() == 0
    assert Poly.one().degree() == 0
    assert P("x1 + x2*x3").degree() == 2


def test_variables():
    assert P("x1*x2 + x3 + 1").variables() == {1, 2, 3}


def test_is_linear():
    assert P("x1 + x2 + 1").is_linear()
    assert not P("x1*x2").is_linear()
    assert Poly.zero().is_linear()


def test_leading_monomial_deglex():
    assert P("x1 + x2*x3").leading_monomial() == (2, 3)
    with pytest.raises(ValueError):
        Poly.zero().leading_monomial()


def test_has_constant_term():
    assert P("x1 + 1").has_constant_term()
    assert not P("x1").has_constant_term()


# -- the paper's fact shapes ---------------------------------------------------


def test_as_unit():
    assert P("x3").as_unit() == (3, 0)
    assert P("x3 + 1").as_unit() == (3, 1)
    assert P("x1 + x2").as_unit() is None
    assert P("x1*x2 + 1").as_unit() is None


def test_as_equivalence():
    assert P("x1 + x2").as_equivalence() == (2, 1, 0)
    assert P("x1 + x2 + 1").as_equivalence() == (2, 1, 1)
    assert P("x1 + x2*x3").as_equivalence() is None
    assert P("x1").as_equivalence() is None


def test_as_monomial_assignment():
    assert P("x1*x2*x3 + 1").as_monomial_assignment() == (1, 2, 3)
    assert P("x1 + 1").as_monomial_assignment() == (1,)
    assert P("x1*x2").as_monomial_assignment() is None


def test_as_linear_equation():
    assert P("x1 + x3 + 1").as_linear_equation() == ((1, 3), 1)
    assert P("x1*x2").as_linear_equation() is None
    assert Poly.zero().as_linear_equation() == ((), 0)


# -- arithmetic -------------------------------------------------------------------


def test_addition_is_xor():
    a, b = P("x1 + x2"), P("x2 + x3")
    assert a + b == P("x1 + x3")


def test_multiplication_distributes():
    assert P("x1 + x2") * P("x1") == P("x1 + x1*x2")


def test_paper_elimlin_simplification():
    # (x2 + x3)*x2 + x2*x3 + 1 should simplify to x2 + 1 (section II-C).
    lhs = P("x2 + x3") * P("x2") + P("x2*x3 + 1")
    assert lhs == P("x2 + 1")


def test_substitute_constant():
    p = P("x1*x2 + x2*x3 + 1")
    assert p.substitute(2, Poly.one()) == P("x1 + x3 + 1")
    assert p.substitute(2, Poly.zero()) == Poly.one()


def test_substitute_by_poly():
    p = P("x1*x2 + x2*x3 + 1")
    # x1 := x2 + x3 gives (x2+x3)x2 + x2x3 + 1 = x2 + 1.
    assert p.substitute(1, P("x2 + x3")) == P("x2 + 1")


def test_substitute_missing_var_is_identity():
    p = P("x1 + x2")
    assert p.substitute(4, Poly.one()) is p


def test_substitute_many_simultaneous():
    p = P("x1 + x2")
    # Simultaneous {x1 -> x2, x2 -> x1} swaps, yielding x2 + x1 = p.
    q = p.substitute_many({1: Poly.variable(2), 2: Poly.variable(1)})
    assert q == p


def test_evaluate():
    p = P("x1*x2 + x3 + 1")
    assert p.evaluate([0, 1, 1, 0, 0, 0]) == 0
    assert p.evaluate([0, 1, 1, 1, 0, 0]) == 1


def test_remap():
    p = P("x1*x2 + 1")
    assert p.remap({1: 5, 2: 6}) == Poly([(5, 6), ()])


def test_to_string_roundtrip():
    ring = Ring(6)
    p = P("x1*x2 + x3 + 1")
    assert parse_polynomial(p.to_string(), Ring(6)) == p


# -- algebraic property tests -------------------------------------------------------


@given(polys, polys)
def test_add_commutative(a, b):
    assert a + b == b + a


@given(polys, polys, polys)
def test_add_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(polys)
def test_add_self_is_zero(a):
    assert (a + a).is_zero()


@given(polys, polys)
def test_mul_commutative(a, b):
    assert a * b == b * a


@settings(max_examples=50)
@given(polys, polys, polys)
def test_mul_associative(a, b, c):
    assert (a * b) * c == a * (b * c)


@settings(max_examples=50)
@given(polys, polys, polys)
def test_distributivity(a, b, c):
    assert a * (b + c) == a * b + a * c


@given(polys, assignments)
def test_square_evaluates_identically(p, assignment):
    # p² and p agree as Boolean functions.
    assert (p * p).evaluate(assignment) == p.evaluate(assignment)


@given(polys, polys, assignments)
def test_evaluation_homomorphism(a, b, assignment):
    assert (a + b).evaluate(assignment) == a.evaluate(assignment) ^ b.evaluate(assignment)
    assert (a * b).evaluate(assignment) == a.evaluate(assignment) & b.evaluate(assignment)


@given(polys, st.integers(0, N_VARS - 1), polys, assignments)
def test_substitution_evaluation_consistency(p, var, replacement, assignment):
    # Substituting then evaluating == evaluating with the replaced value.
    substituted = p.substitute(var, replacement)
    modified = list(assignment)
    modified[var] = replacement.evaluate(assignment)
    assert substituted.evaluate(assignment) == p.evaluate(modified)


@given(polys)
def test_hash_equals_imply_equal(p):
    q = Poly(p.monomials)
    assert p == q and hash(p) == hash(q)


def test_substitute_mask_native_matches_tuple_oracle():
    """The mask-native substitute kernel must agree with the pre-mask
    remove/mul loop at any width (here: across the one-limb boundary)."""
    import random

    from repro.anf import monomial as mono

    rng = random.Random(9)
    for _ in range(60):
        width = rng.choice([10, 63, 64, 65, 100])
        ms = []
        for _ in range(rng.randrange(1, 6)):
            deg = rng.randrange(0, 4)
            ms.append(tuple(sorted(rng.sample(range(width), deg))))
        p = Poly(ms)
        var = rng.randrange(width)
        rep_ms = []
        for _ in range(rng.randrange(0, 4)):
            deg = rng.randrange(0, 3)
            rep_ms.append(tuple(sorted(rng.sample(range(width), deg))))
        replacement = Poly(rep_ms)
        got = p.substitute(var, replacement)
        with mono.tuple_oracle():
            want = p.substitute(var, replacement)
        assert got == want


def test_substitute_negative_variable_raises():
    import pytest

    from repro.anf import monomial as mono

    p = Poly([(1,), ()])
    with pytest.raises(ValueError):
        p.substitute(-1, Poly.zero())
    with mono.tuple_oracle():
        with pytest.raises(ValueError):
            p.substitute(-1, Poly.zero())
