"""End-to-end regression: cipher-scale (>64-variable) systems stay on the
width-adaptive mask path.

A Simon round encoding runs hundreds of variables, so before the
multi-limb masks every monomial here silently fell off the bitwise fast
path.  These tests drive the full Bosphorus ``_absorb`` + failed-literal
probing pipeline on such a system and assert (a) the tuple-fallback
counter never moves, and (b) the engine's output is bit-for-bit the same
as the pre-change sorted-tuple engine (the debug oracle).
"""

import pytest

from repro.anf import AnfSystem
from repro.anf import monomial as mono
from repro.anf.stats import mask_fallback_hits, reset_mask_fallback_hits
from repro.ciphers import simon
from repro.core.bosphorus import Bosphorus
from repro.core.config import Config
from repro.core.probing import run_probing
from repro.core.propagation import materialize, propagate


def _absorb_and_probe(inst, probe_limit=8):
    """The Bosphorus inner-loop shape: fixpoint, probe, absorb, fixpoint."""
    system = AnfSystem(inst.ring.clone(), inst.polynomials)
    propagate(system)
    probe = run_probing(system, None, probe_limit)
    fresh = []
    for fact in probe.facts:
        nf = system.normalize(fact)
        if not nf.is_zero() and system.add(nf):
            fresh.append(nf)
    if fresh:
        propagate(system, dirty=fresh)
    return system, probe


def test_simon_round_encoding_exceeds_one_limb():
    inst = simon.generate_instance(1, 3, seed=3)
    assert inst.n_vars > mono.LIMB_BITS


def test_wide_absorb_probing_sweep_zero_fallbacks():
    inst = simon.generate_instance(1, 3, seed=3)
    reset_mask_fallback_hits()
    system, probe = _absorb_and_probe(inst)
    assert mask_fallback_hits() == 0
    assert probe.probed > 0
    assert system.check_assignment(inst.witness)


def test_wide_pipeline_matches_tuple_oracle_bit_for_bit():
    """Mask-path engine output == pre-change tuple-engine output."""
    inst = simon.generate_instance(1, 3, seed=3)
    sys_mask, probe_mask = _absorb_and_probe(inst)
    with mono.tuple_oracle():
        sys_oracle, probe_oracle = _absorb_and_probe(inst)
    assert mask_fallback_hits() > 0  # the oracle really ran
    assert probe_mask.facts == probe_oracle.facts
    assert materialize(sys_mask) == materialize(sys_oracle)
    for v in range(inst.n_vars):
        assert sys_mask.state.value(v) == sys_oracle.state.value(v)
        assert sys_mask.state.find(v) == sys_oracle.state.find(v)


@pytest.mark.slow
def test_full_bosphorus_run_reports_zero_mask_fallbacks():
    """A whole preprocess run at cipher scale rides the mask path."""
    inst = simon.generate_instance(2, 4, seed=5)
    assert inst.n_vars > 2 * mono.LIMB_BITS
    reset_mask_fallback_hits()
    config = Config(
        xl_sample_bits=12,
        elimlin_sample_bits=12,
        use_sat=False,
        use_probing=True,
        probe_limit=4,
        max_iterations=2,
    )
    result = Bosphorus(config).preprocess_anf(inst.ring, inst.polynomials)
    assert result.stats["mask_fallback_hits"] == 0
    assert mask_fallback_hits() == 0
    assert not result.is_unsat
