"""PortfolioRunner: first-win cancellation, deterministic arbitration,
model validation/demotion, and the Bosphorus inner-SAT portfolio mode.
"""

import itertools
import time

import pytest

from repro.anf import AnfSystem, parse_system
from repro.core import Bosphorus, Config
from repro.core.anf_to_cnf import AnfToCnf
from repro.core.satlearn import run_sat
from repro.core.solution import solution_from_model
from repro.portfolio import (
    BackendResult,
    CdclBackend,
    PortfolioDisagreement,
    PortfolioRunner,
    SolverBackend,
    arbitrate,
)
from repro.sat import CnfFormula, parse_dimacs
from repro.satcomp.generators import pigeonhole


def sat_micro():
    return parse_dimacs("p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n")


class StallBackend(SolverBackend):
    """Never answers; exits promptly when cancelled.  Must live at module
    level: the engine pickles backends into worker processes."""

    name = "stall"

    def solve(self, formula, timeout_s=None, deadline=None,
              conflict_budget=None, cancel=None):
        if deadline is None:
            deadline = time.monotonic() + (timeout_s if timeout_s else 30.0)
        while time.monotonic() < deadline:
            if cancel is not None and cancel.is_set():
                return BackendResult(None, cancelled=True)
            time.sleep(0.01)
        return BackendResult(None)


class LyingBackend(SolverBackend):
    """Claims SAT with a bogus model — the validator must demote it."""

    name = "liar"

    def solve(self, formula, timeout_s=None, deadline=None,
              conflict_budget=None, cancel=None):
        return BackendResult(True, model=[0] * formula.n_vars)


class DyingBackend(SolverBackend):
    """Kills its own worker process — the pool sees a dead worker, not a
    solve error."""

    name = "dying"

    def solve(self, formula, timeout_s=None, deadline=None,
              conflict_budget=None, cancel=None):
        import os

        time.sleep(0.3)
        os._exit(17)


# -- arbitration ------------------------------------------------------------


def test_arbitrate_is_order_independent():
    entries = [
        (0, BackendResult(None)),
        (1, BackendResult(True, model=[1])),
        (2, BackendResult(True, model=[0])),
        (3, None),
    ]
    winners = {
        arbitrate(list(perm)) for perm in itertools.permutations(entries)
    }
    assert winners == {1}


def test_arbitrate_nothing_decided():
    assert arbitrate([(0, BackendResult(None)), (1, None)]) is None


def test_arbitrate_raises_on_disagreement():
    with pytest.raises(PortfolioDisagreement):
        arbitrate([(0, BackendResult(True, model=[1])), (1, BackendResult(False))])


# -- sequential mode --------------------------------------------------------


def test_sequential_first_win_cancels_the_rest():
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms"), StallBackend()], jobs=1
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    assert outcome.winner == "minisat"
    assert [s.status for s in outcome.stats] == ["sat", "cancelled", "cancelled"]
    assert outcome.n_cancelled == 2
    assert outcome.stats[0].won and not outcome.stats[1].won


def test_sequential_determinism():
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms", seed=2)], jobs=1
    )
    a = runner.run(sat_micro(), timeout_s=10)
    b = runner.run(sat_micro(), timeout_s=10)
    assert (a.verdict, a.winner, a.model) == (b.verdict, b.winner, b.model)


def test_unavailable_backends_are_skipped():
    from repro.portfolio import DimacsBackend

    runner = PortfolioRunner(
        [DimacsBackend(command=("no-such-binary",)), CdclBackend("minisat")],
        jobs=1,
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    assert outcome.stats[0].status == "skipped"
    assert outcome.winner == "minisat"


def test_invalid_model_demotes_backend():
    def validate(bits):
        formula = sat_micro()
        return all(
            any(bits[l >> 1] ^ (l & 1) == 1 for l in clause)
            for clause in formula.clauses
        )

    runner = PortfolioRunner(
        [LyingBackend(), CdclBackend("minisat")], jobs=1, validate=validate
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    assert outcome.winner == "minisat"
    assert outcome.stats[0].status == "invalid-model"
    assert outcome.stats[0].demoted
    assert validate(outcome.model)


def test_all_unknown_yields_no_verdict():
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms", seed=1)], jobs=1
    )
    outcome = runner.run(pigeonhole(9), conflict_budget=30, timeout_s=10)
    assert outcome.verdict is None
    assert outcome.winner is None
    assert all(s.status == "unknown" for s in outcome.stats)


def test_timeout_bounds_the_whole_race_not_each_backend():
    # Regression: timeout_s used to hand every backend its own fresh
    # budget, so a sequential race of N backends burned N x timeout.
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms"), CdclBackend("minisat", seed=3)],
        jobs=1,
    )
    start = time.monotonic()
    outcome = runner.run(pigeonhole(9), timeout_s=0.6)
    elapsed = time.monotonic() - start
    assert outcome.verdict is None
    assert elapsed < 1.4  # one shared 0.6 s budget, not 3 x 0.6 s


def test_run_sat_portfolio_rejects_unbounded_external_backends():
    from repro.anf import AnfSystem, parse_system

    ring, polys = parse_system("x1*x2 + x3")
    config = Config(
        use_portfolio=True,
        portfolio_backends=("minisat", "dimacs:no-such-binary"),
        portfolio_timeout_s=None,
    )
    with pytest.raises(ValueError, match="portfolio_timeout_s"):
        run_sat(AnfSystem(ring, polys), config, 100)
    # With an explicit wall-clock bound the race runs; the missing
    # binary is skipped and the in-process backend answers.
    bounded = config.with_(portfolio_timeout_s=10.0)
    result = run_sat(AnfSystem(ring.clone(), list(polys)), bounded, 100)
    assert result.status is True
    assert result.portfolio.winner == "minisat"


# -- parallel mode ----------------------------------------------------------


def test_parallel_first_win_cancels_stalled_worker():
    runner = PortfolioRunner(
        [CdclBackend("minisat"), StallBackend()], jobs=2
    )
    start = time.monotonic()
    outcome = runner.run(sat_micro(), timeout_s=20)
    elapsed = time.monotonic() - start
    assert outcome.verdict is True
    assert outcome.winner == "minisat"
    stall_row = outcome.stats[1]
    assert stall_row.status == "cancelled"
    assert stall_row.cancelled
    assert outcome.n_cancelled >= 1
    assert elapsed < 15.0  # far below the stall backend's 20 s horizon


def test_parallel_dead_worker_reports_error_and_real_elapsed():
    # Regression: a backend whose worker process died was recorded with
    # elapsed = 0.0, misreporting its wall time in PortfolioStats.  The
    # row must carry the error and the real time the backend held its
    # slot (>= the 0.3 s the worker lived).
    runner = PortfolioRunner(
        [CdclBackend("minisat"), DyingBackend()], jobs=2
    )
    outcome = runner.run(sat_micro(), timeout_s=20)
    assert outcome.verdict is True
    assert outcome.winner == "minisat"
    dying_row = outcome.stats[1]
    assert dying_row.status == "error"
    assert dying_row.error and "worker" in dying_row.error
    assert dying_row.seconds >= 0.25


def test_parallel_verdict_matches_sequential():
    backends = [CdclBackend("minisat"), CdclBackend("cms", seed=1)]
    seq = PortfolioRunner(backends, jobs=1).run(sat_micro(), timeout_s=10)
    par = PortfolioRunner(backends, jobs=2).run(sat_micro(), timeout_s=10)
    assert par.verdict == seq.verdict is True


def test_parallel_unsat_race():
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms"), CdclBackend("minisat", seed=3)],
        jobs=2,
    )
    outcome = runner.run(pigeonhole(5), timeout_s=20)
    assert outcome.verdict is False
    assert outcome.winner is not None


# -- Simon/Speck round-trip acceptance --------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("cipher", ["simon", "speck"])
def test_portfolio_validated_verdict_on_cipher_roundtrip(cipher):
    """The acceptance claim: 2+ in-process backends race a real cipher
    key-recovery instance, the winning SAT model survives reconstruction
    through the conversion auxiliaries and evaluation on the original
    ANF, and the losing/stalled worker is provably cancelled."""
    from repro.ciphers import simon, speck

    if cipher == "simon":
        inst = simon.generate_instance(2, 4, seed=1)
    else:
        inst = speck.generate_instance(2, 3, seed=1)
    system = AnfSystem(inst.ring.clone(), inst.polynomials)
    conversion = AnfToCnf(Config()).convert(system)
    polynomials = list(inst.polynomials)

    def validate(bits):
        try:
            solution = solution_from_model(conversion, bits)
        except ValueError:
            return False
        return solution.satisfies(polynomials)

    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms", seed=5), StallBackend()],
        jobs=2,
        validate=validate,
    )
    outcome = runner.run(conversion.formula, timeout_s=60)
    assert outcome.verdict is True
    assert outcome.winner in ("minisat", "cms@5")
    assert validate(outcome.model)
    assert any(s.cancelled for s in outcome.stats)


# -- the Bosphorus inner-SAT portfolio mode ---------------------------------

PAPER_SYSTEM = """\
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
"""


def test_run_sat_portfolio_mode():
    ring, polys = parse_system(PAPER_SYSTEM)
    system = AnfSystem(ring, polys)
    config = Config(
        use_portfolio=True,
        portfolio_backends=("minisat", "cms@1"),
        portfolio_jobs=1,
    )
    result = run_sat(system, config, 2000)
    assert result.status is True
    assert result.portfolio is not None
    assert result.portfolio.winner == "minisat"
    from repro.core.solution import Solution

    assert Solution(result.model).satisfies(list(system.polynomials))


def test_run_sat_portfolio_matches_single_solver_verdict():
    ring, polys = parse_system(PAPER_SYSTEM)
    single = run_sat(AnfSystem(ring.clone(), list(polys)), Config(), 2000)
    config = Config(
        use_portfolio=True,
        portfolio_backends=("minisat", "cms", "cms@2"),
        portfolio_jobs=1,
    )
    racy = run_sat(AnfSystem(ring.clone(), list(polys)), config, 2000)
    assert racy.status is single.status is True


def test_bosphorus_end_to_end_with_portfolio():
    ring, polys = parse_system(PAPER_SYSTEM)
    config = Config(
        use_portfolio=True,
        portfolio_backends=("minisat", "cms@1"),
        portfolio_jobs=1,
    )
    result = Bosphorus(config).preprocess_anf(ring, polys)
    assert result.status == "sat"
    # The paper example's unique solution: x1..x4 = 1, x5 = 0.
    assert result.solution.values[1:6] == [1, 1, 1, 1, 0]
    winners = [
        it.get("sat_portfolio_winner")
        for it in result.stats["techniques"]
        if "sat_portfolio_winner" in it
    ]
    assert winners  # the portfolio actually ran inside the loop
