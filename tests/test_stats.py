"""Tests for ANF system statistics."""

from repro.anf import describe_system, parse_system


def polys_of(text):
    _, polys = parse_system(text)
    return polys


def test_empty_system():
    stats = describe_system([])
    assert stats.n_equations == 0
    assert stats.avg_equation_size == 0.0


def test_counts():
    stats = describe_system(polys_of("""
x1*x2 + x3 + 1
x1 + x2
x1*x2*x3 + x1*x2
"""))
    assert stats.n_equations == 3
    assert stats.n_variables == 3
    assert stats.max_degree == 3
    assert stats.linear_equations == 1
    assert stats.degree_histogram == {2: 1, 1: 1, 3: 1}
    assert stats.max_equation_size == 3
    assert stats.n_monomials == 7
    # distinct: x1x2, x3, 1, x1, x2, x1x2x3 -> 6
    assert stats.n_distinct_monomials == 6


def test_avg_size():
    stats = describe_system(polys_of("x1 + x2\nx1"))
    assert stats.avg_equation_size == 1.5


def test_format_contains_key_lines():
    text = describe_system(polys_of("x1*x2 + 1")).format()
    assert "equations:" in text
    assert "degree histogram:" in text


def test_cli_stats_flag(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "p.anf"
    path.write_text("x1*x2 + x3\nx1 + 1\n")
    main(["--anfread", str(path), "--stats", "--verb", "0"])
    out = capsys.readouterr().out
    assert "input ANF statistics" in out
    assert "processed ANF statistics" in out
