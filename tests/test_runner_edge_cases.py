"""Edge-case tests for the experiment runner."""

import pytest

from repro.anf import Poly, Ring, parse_system
from repro.core.config import Config
from repro.experiments import Problem, run_instance, run_final_solver
from repro.sat import CnfFormula, mk_lit

FAST = Config(xl_sample_bits=8, elimlin_sample_bits=8,
              sat_conflict_start=500, sat_conflict_max=1000, max_iterations=2)


def test_unsat_anf_input_without_bosphorus():
    ring, polys = parse_system("x1\nx1 + 1")
    problem = Problem.from_anf("unsat", ring, polys, expected=False)
    res = run_instance(problem, "minisat", False, timeout_s=5,
                       bosphorus_config=FAST)
    assert res.verdict is False


def test_unsat_anf_input_with_bosphorus():
    ring, polys = parse_system("x1\nx1 + 1")
    problem = Problem.from_anf("unsat", ring, polys, expected=False)
    res = run_instance(problem, "minisat", True, timeout_s=5,
                       bosphorus_config=FAST)
    assert res.verdict is False
    assert res.decided_by_bosphorus


def test_timeout_returns_none_verdict():
    # Pigeonhole too hard for a near-zero budget.
    from repro.satcomp.generators import pigeonhole

    problem = Problem.from_cnf("php9", pigeonhole(9), expected=False)
    res = run_instance(problem, "minisat", False, timeout_s=0.05)
    assert res.verdict is None
    assert res.seconds >= 0.05


def test_empty_formula_is_sat():
    formula = CnfFormula(3)
    verdict, model, _ = run_final_solver(formula, "minisat", timeout_s=5)
    assert verdict is True
    assert len(model) == 3


def test_lingeling_model_extends_over_eliminated_vars():
    # Variable 1 is BVE-eliminable; the reported model must still be total
    # and satisfy the original clauses.
    formula = CnfFormula(3)
    formula.add_clause([mk_lit(0), mk_lit(1)])
    formula.add_clause([mk_lit(1, True), mk_lit(2)])
    verdict, model, _ = run_final_solver(formula, "lingeling", timeout_s=5)
    assert verdict is True
    for clause in formula.clauses:
        assert any(model[l >> 1] ^ (l & 1) for l in clause)


def test_cms_gets_recovered_xors_on_cnf():
    # An UNSAT xor cycle written as plain CNF: cms should settle it
    # without search thanks to recovery + GJE.
    def xor_clauses(f, variables, rhs):
        m = len(variables)
        for pattern in range(1 << m):
            if bin(pattern).count("1") & 1 == rhs:
                continue
            f.add_clause([
                mk_lit(variables[i], negated=bool(pattern >> i & 1))
                for i in range(m)
            ])

    formula = CnfFormula(3)
    xor_clauses(formula, [0, 1], 1)
    xor_clauses(formula, [1, 2], 1)
    xor_clauses(formula, [0, 2], 1)
    verdict, _, conflicts = run_final_solver(formula, "cms", timeout_s=5)
    assert verdict is False
    assert conflicts == 0


def test_past_deadline_returns_unsolved_immediately():
    # Regression: a deadline already in the past used to buy one free
    # conflict slice before the wall clock was consulted.
    import time

    from repro.satcomp.generators import pigeonhole

    formula = pigeonhole(9)
    start = time.monotonic()
    verdict, model, conflicts = run_final_solver(
        formula, "minisat", timeout_s=10.0, deadline=time.monotonic()
    )
    assert verdict is None
    assert model is None
    assert conflicts == 0
    assert time.monotonic() - start < 0.5


def test_solve_with_budget_past_deadline_runs_no_slice():
    import time

    from repro.experiments import solve_with_budget
    from repro.sat import Solver
    from repro.satcomp.generators import pigeonhole

    solver = Solver()
    formula = pigeonhole(9)
    solver.ensure_vars(formula.n_vars)
    for clause in formula.clauses:
        solver.add_clause(clause)
    assert solve_with_budget(solver, deadline=time.monotonic()) is None
    assert solver.num_conflicts == 0


def test_problem_constructors():
    ring, polys = parse_system("x1 + 1")
    p = Problem.from_anf("a", ring, polys)
    assert p.kind == "anf" and p.expected is True
    q = Problem.from_cnf("c", CnfFormula(1))
    assert q.kind == "cnf" and q.expected is None
