"""Incremental vs full propagation equivalence, and the engine's new APIs.

The incremental engine (``propagate(system, dirty=...)``) must reach the
same fixpoint as a full pass: same variable state, same residual equation
set.  These tests drive both engines side by side on the Simon and Speck
encodings — the propagation-heavy workloads the paper benchmarks — and
pin the occurrence-list bookkeeping that makes the incremental path
correct.
"""

import pytest

from repro.anf import AnfSystem, Poly, PolyBuilder, Ring, parse_system
from repro.anf.parser import parse_polynomial
from repro.ciphers import simon, speck
from repro.core.propagation import materialize, propagate


def state_snapshot(system):
    """Canonical view of the variable state: values + equivalence classes."""
    values = {}
    classes = {}
    for v in range(system.state.n_vars):
        val = system.state.value(v)
        if val is not None:
            values[v] = val
        else:
            root, parity = system.state.find(v)
            if root != v:
                classes[v] = (root, parity)
    return values, classes


def assert_same_fixpoint(a, b):
    va, ca = state_snapshot(a)
    vb, cb = state_snapshot(b)
    assert va == vb
    # Equivalence classes may pick different roots; compare the induced
    # partition, with each member's parity taken relative to the group's
    # smallest variable so the representation is canonical.
    def normalized_classes(values, classes, n):
        groups = {}
        for v in range(n):
            if v in values:
                continue
            root, parity = v, 0
            while root in classes:
                r, p = classes[root]
                parity ^= p
                root = r
            groups.setdefault(root, set()).add((v, parity))
        out = set()
        for g in groups.values():
            if len(g) < 2:
                continue
            base = min(p for v, p in g if v == min(x for x, _ in g))
            out.add(frozenset((v, p ^ base) for v, p in g))
        return out

    n = max(a.state.n_vars, b.state.n_vars)
    assert normalized_classes(va, ca, n) == normalized_classes(vb, cb, n)
    assert set(a.polynomials) == set(b.polynomials)


def drive_incremental(ring, polynomials, fact_stream, batch):
    system = AnfSystem(ring, polynomials)
    propagate(system)
    for i in range(0, len(fact_stream), batch):
        fresh = []
        for fact in fact_stream[i : i + batch]:
            nf = system.normalize(fact)
            if not nf.is_zero() and system.add(nf):
                fresh.append(nf)
        if fresh:
            propagate(system, dirty=fresh)
    return system

def drive_full(ring, polynomials, fact_stream, batch):
    system = AnfSystem(ring, polynomials)
    propagate(system)
    for i in range(0, len(fact_stream), batch):
        added = False
        for fact in fact_stream[i : i + batch]:
            nf = system.normalize(fact)
            if not nf.is_zero() and system.add(nf):
                added = True
        if added:
            propagate(system)
    return system


@pytest.mark.parametrize("batch", [1, 5])
def test_incremental_matches_full_on_simon(batch):
    inst = simon.generate_instance(1, 4, seed=13)
    facts = [
        Poly.variable(v).add_constant(inst.witness[v]) for v in range(0, 48, 2)
    ]
    inc = drive_incremental(inst.ring.clone(), inst.polynomials, facts, batch)
    full = drive_full(inst.ring.clone(), inst.polynomials, facts, batch)
    assert_same_fixpoint(inc, full)


@pytest.mark.parametrize("batch", [1, 4])
def test_incremental_matches_full_on_speck(batch):
    inst = speck.generate_instance(1, 3, seed=5)
    facts = [
        Poly.variable(v).add_constant(inst.witness[v]) for v in range(0, 40, 2)
    ]
    inc = drive_incremental(inst.ring.clone(), inst.polynomials, facts, batch)
    full = drive_full(inst.ring.clone(), inst.polynomials, facts, batch)
    assert_same_fixpoint(inc, full)


def test_incremental_matches_full_witness_closure_on_simon():
    """Feeding the whole witness must solve the instance both ways."""
    inst = simon.generate_instance(1, 3, seed=31)
    facts = [
        Poly.variable(v).add_constant(inst.witness[v])
        for v in range(len(inst.witness))
    ]
    inc = drive_incremental(inst.ring.clone(), inst.polynomials, facts, 8)
    full = drive_full(inst.ring.clone(), inst.polynomials, facts, 8)
    assert len(inc) == 0 and len(full) == 0
    assert inc.check_assignment(inst.witness)
    # Every determined value agrees with the witness.
    for v in range(len(inst.witness)):
        val = inc.state.value(v)
        if val is not None:
            assert val == inst.witness[v]
    assert_same_fixpoint(inc, full)


# -- engine internals ---------------------------------------------------------


def test_occurrence_lists_stay_exact_through_propagation():
    ring, polys = parse_system(
        """
x1 + 1
x1*x2 + x3
x2*x4 + x3*x5
x4 + x5 + x6
"""
    )
    system = AnfSystem(ring, polys)
    propagate(system)
    # Invariant: occurrence lists exactly mirror the stored equations.
    expected = {}
    for idx, p in enumerate(system.polynomials):
        for v in p.variables():
            expected.setdefault(v, set()).add(idx)
    for v in range(system.ring.n_vars):
        assert set(system.occurrences(v)) == expected.get(v, set()), v


def test_rounds_counts_waves_not_pops():
    # A cascade chain: x1=1 unlocks x2, which unlocks x3, ...
    ring, polys = parse_system(
        """
x1 + 1
x1*x2 + 1
x2*x3 + 1
x3*x4 + 1
"""
    )
    system = AnfSystem(ring, polys)
    stats = propagate(system)
    # One wave seeds all four equations; the cascade takes a handful of
    # further waves — far fewer than the number of worklist pops.
    assert stats.rounds <= 6
    assert stats.processed >= stats.rounds
    assert stats.assignments == 4


def test_dirty_accepts_indices_and_polynomials():
    ring, polys = parse_system("x1*x2 + x3\nx4 + 1")
    system = AnfSystem(ring, polys)
    propagate(system)
    p = parse_polynomial("x1 + 1", system.ring)
    system.add(p)
    stats = propagate(system, dirty=[p])
    assert stats.assignments == 1
    q = parse_polynomial("x2 + 1", system.ring)
    system.add(q)
    stats = propagate(system, dirty=[system.index_of(q)])
    # x1=1, x2=1 reduce x1*x2 + x3 to x3 + 1... i.e. x3 = 1.
    assert system.state.value(3) == 1


def test_linear_subset_reduced_through_gf2():
    # Neither equation alone is a fact, but their GF(2) sum is the
    # equivalence x1 + x4 — only the echelonisation phase can see it.
    ring, polys = parse_system(
        """
x1 + x2 + x3
x2 + x3 + x4
"""
    )
    system = AnfSystem(ring, polys)
    stats = propagate(system)
    assert stats.linear_reductions >= 1
    assert stats.equivalences >= 1
    r1, p1 = system.state.find(1)
    r4, p4 = system.state.find(4)
    assert r1 == r4 and p1 == p4
    # The two rows collapse to a single residual after the rewrite.
    assert len(system) == 1


def test_linear_subset_contradiction_detected():
    ring, polys = parse_system(
        """
x1 + x2 + x3
x1 + x2 + x3 + 1
"""
    )
    from repro.anf import ContradictionError

    system = AnfSystem(ring, polys)
    with pytest.raises(ContradictionError):
        propagate(system)


def test_replace_at_and_remove_at_keep_index_map():
    ring, polys = parse_system("x1 + x2 + x5\nx2*x3 + x4\nx4*x5 + 1")
    system = AnfSystem(ring, polys)
    p_new = parse_polynomial("x6 + x7 + x8", system.ring)
    assert system.replace_at(0, p_new)
    assert system.index_of(p_new) == 0
    assert system.occurrences(1) == set()
    assert 0 in system.occurrences(6)
    removed = system.remove_at(0)
    assert removed == p_new
    #

    # The last equation swapped into slot 0.
    assert system.index_of(system.polynomials[0]) == 0
    for idx, p in enumerate(system.polynomials):
        for v in p.variables():
            assert idx in system.occurrences(v)


def test_replace_at_with_equal_object_is_noop():
    # Regression: an equal-but-distinct Poly for the same slot must not
    # fall into the dedup branch and silently drop the equation.
    ring, polys = parse_system("x1 + x2")
    system = AnfSystem(ring, polys)
    twin = Poly([(1,), (2,)])
    assert twin is not system.polynomials[0]
    assert system.replace_at(0, twin) is True
    assert len(system) == 1
    assert system.occurrences(1) == {0}


def test_poly_builder_round_trip():
    b = PolyBuilder()
    b.add_monomial((1,))
    b.add_monomial((1,))  # cancels
    b.add_monomial((2, 3))
    b.add_poly(parse_polynomial("x2*x3 + x4", Ring(6)))  # (2,3) cancels
    assert b.build() == Poly([(4,)])
    assert PolyBuilder().build().is_zero()


def test_full_propagation_still_idempotent_after_incremental():
    inst = simon.generate_instance(1, 3, seed=2)
    system = AnfSystem(inst.ring.clone(), inst.polynomials)
    propagate(system)
    snapshot = set(system.polynomials)
    stats = propagate(system)
    assert not stats.changed
    assert set(system.polynomials) == snapshot
