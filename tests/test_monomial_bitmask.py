"""Differential harness: width-adaptive mask path vs the tuple oracle.

The monomial layer shadows *every* monomial with a width-adaptive int
bitmask and routes mul/divides/lcm/remove through bitwise ops; the
historical sorted-tuple merge survives only as a debug oracle behind
``monomial.tuple_oracle()``.  These property tests cross-check the two
paths at widths straddling the 64-bit limb boundaries (63, 64, 65, 127,
128, 1000 variables), pin the fallback-hit counter semantics, and cover
the mask <-> packed-word interop with ``gf2.matrix``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anf import monomial as mono
from repro.anf.polynomial import Poly
from repro.anf.stats import mask_fallback_hits, reset_mask_fallback_hits
from repro.gf2 import GF2Matrix

#: Variable-universe widths straddling the limb boundaries.
WIDTHS = (63, 64, 65, 127, 128, 1000)

# Variable lists drawn from a width sampled per example, biased so that
# monomials regularly cross a limb boundary.
width_st = st.sampled_from(WIDTHS)


@st.composite
def monomial_pair(draw):
    width = draw(width_st)
    var = st.integers(0, width - 1)
    return draw(st.lists(var, max_size=8)), draw(st.lists(var, max_size=8))


def oracle(fn, *args):
    """Run a monomial op on the sorted-tuple debug-oracle path."""
    with mono.tuple_oracle():
        return fn(*args)


def tuple_mul(a, b):
    """Independent reference: sorted union of variable sets."""
    return tuple(sorted(set(a) | set(b)))


# -- differential fuzz: mask path vs tuple oracle ------------------------------


@given(monomial_pair())
def test_make_matches_oracle(pair):
    a, _ = pair
    assert mono.make(a) == oracle(mono.make, a) == tuple(sorted(set(a)))


@given(monomial_pair())
def test_mul_matches_oracle_and_reference(pair):
    a, b = pair
    ma, mb = mono.make(a), mono.make(b)
    got = mono.mul(ma, mb)
    assert got == oracle(mono.mul, ma, mb) == tuple_mul(ma, mb)


@given(monomial_pair())
def test_divides_matches_oracle(pair):
    a, b = pair
    ma, mb = mono.make(a), mono.make(b)
    assert mono.divides(ma, mb) == oracle(mono.divides, ma, mb)
    assert mono.divides(ma, mb) == set(ma).issubset(set(mb))


@given(monomial_pair())
def test_lcm_matches_oracle(pair):
    a, b = pair
    ma, mb = mono.make(a), mono.make(b)
    assert mono.lcm(ma, mb) == oracle(mono.lcm, ma, mb) == tuple_mul(ma, mb)


@given(monomial_pair())
def test_remove_matches_oracle(pair):
    a, _ = pair
    m = mono.make(a)
    for v in m:
        assert mono.remove(m, v) == oracle(mono.remove, m, v)
        assert mono.remove(m, v) == tuple(x for x in m if x != v)


@given(monomial_pair())
def test_intern_matches_oracle(pair):
    a, _ = pair
    m = tuple(sorted(set(a)))
    assert mono.intern(m) == oracle(mono.intern, m) == m
    # Interning is identity-stable on the mask path at any width.
    assert mono.intern(m) is mono.intern(tuple(m))


@given(monomial_pair())
def test_deglex_key_matches_oracle(pair):
    a, b = pair
    ma, mb = mono.make(a), mono.make(b)
    assert mono.deglex_key(ma) == oracle(mono.deglex_key, ma)
    assert (mono.deglex_key(ma) < mono.deglex_key(mb)) == (
        oracle(mono.deglex_key, ma) < oracle(mono.deglex_key, mb)
    )


@settings(max_examples=25)
@given(st.sampled_from(WIDTHS), st.integers(0, 2**32 - 1))
def test_poly_product_matches_oracle_at_width(width, seed):
    """Whole-Poly products agree between the two paths at every width."""
    rng = random.Random(seed)

    def rand_poly():
        return Poly(
            mono.make(rng.sample(range(width), rng.randint(0, 3)))
            for _ in range(4)
        )

    p, q = rand_poly(), rand_poly()
    with mono.tuple_oracle():
        want = p * q
    assert p * q == want


# -- limb boundaries and mask round trips -------------------------------------


@pytest.mark.parametrize("width", WIDTHS)
def test_mask_round_trip_at_width(width):
    m = mono.make([0, width - 1, width // 2])
    mask = mono.mask_of(m)
    assert mask > 0
    assert mono.from_mask(mask) == m
    assert mono.intern(m) is mono.from_mask(mask)


def test_wide_monomials_are_masked_and_interned():
    """Beyond one limb the mask keeps working — no sentinel, no fallback."""
    m = mono.make([1, mono.LIMB_BITS + 3])
    assert mono.mask_of(m) == (1 << 1) | (1 << (mono.LIMB_BITS + 3))
    assert mono.intern(m) is mono.make([mono.LIMB_BITS + 3, 1])


def test_from_mask_any_width():
    assert mono.from_mask(1 << mono.LIMB_BITS) == (mono.LIMB_BITS,)
    assert mono.from_mask(1 << 1000) == (1000,)
    with pytest.raises(ValueError):
        mono.from_mask(-1)


def test_mul_across_limb_boundary():
    """Operands in different limbs still produce the sorted-tuple union."""
    ma = mono.make([2, 63])
    mb = mono.make([64, 65, 700])
    assert mono.mask_of(ma).bit_length() == 64
    assert mono.mask_of(mb).bit_length() == 701
    assert mono.mul(ma, mb) == (2, 63, 64, 65, 700)
    assert mono.mul(mb, ma) == (2, 63, 64, 65, 700)
    assert mono.divides(ma, mono.mul(ma, mb))
    assert not mono.divides(mb, ma)


def test_raw_tuples_interoperate_with_interned():
    """Raw tuples built by callers compare and hash like interned ones."""
    raw = (2, 5)
    interned = mono.make([5, 2])
    assert raw == interned
    assert hash(raw) == hash(interned)
    assert mono.mul(raw, (3,)) == (2, 3, 5)


# -- negative variable indices: uniform ValueError on both paths ---------------


@pytest.mark.parametrize("bad", [[-1], [3, -2, 5], [-(10**9)]])
def test_make_rejects_negative_indices_on_both_paths(bad):
    with pytest.raises(ValueError):
        mono.make(bad)
    with mono.tuple_oracle():
        with pytest.raises(ValueError):
            mono.make(bad)


def test_mask_of_rejects_negative_indices():
    with pytest.raises(ValueError):
        mono.mask_of((-3,))
    with pytest.raises(ValueError):
        mono.mask_of((0, 2, -1))


def test_intern_and_remove_reject_negative_indices_on_both_paths():
    with pytest.raises(ValueError):
        mono.intern((-4,))
    with pytest.raises(ValueError):
        mono.remove((1, 2), -1)
    with mono.tuple_oracle():
        with pytest.raises(ValueError):
            mono.intern((-4,))
        with pytest.raises(ValueError):
            mono.remove((1, 2), -1)


# -- fallback-hit counter ------------------------------------------------------


def test_mask_path_never_touches_fallback_counter():
    reset_mask_fallback_hits()
    a = mono.make([1, 63, 64, 900])
    b = mono.make([2, 64, 127, 128])
    mono.mul(a, b)
    mono.divides(a, b)
    mono.lcm(a, b)
    mono.remove(a, 900)
    mono.intern(a)
    mono.deglex_key(a)
    assert mask_fallback_hits() == 0


def test_tuple_oracle_counts_fallbacks_and_restores():
    reset_mask_fallback_hits()
    a, b = (1, 70), (2, 70)
    with mono.tuple_oracle():
        mono.mul(a, b)
        mono.divides(a, b)
    assert mask_fallback_hits() == 2
    mono.mul(a, b)  # back on the mask path
    assert mask_fallback_hits() == 2
    reset_mask_fallback_hits()
    assert mask_fallback_hits() == 0


# -- packed-word interop with gf2.matrix --------------------------------------


@given(st.lists(st.integers(0, 999), max_size=12))
def test_mask_words_round_trip(vars_):
    mask = mono.mask_of(mono.make(vars_))
    words = mono.mask_words(mask)
    assert all(0 <= w < (1 << mono.LIMB_BITS) for w in words)
    assert mono.mask_from_words(words) == mask
    # Explicit padding keeps the round trip intact.
    padded = mono.mask_words(mask, n_words=len(words) + 3)
    assert len(padded) == len(words) + 3
    assert mono.mask_from_words(padded) == mask


def test_mask_words_rejects_too_few_words_and_bad_input():
    with pytest.raises(ValueError):
        mono.mask_words(1 << 130, n_words=2)
    with pytest.raises(ValueError):
        mono.mask_words(-1)
    with pytest.raises(ValueError):
        mono.mask_from_words([1 << mono.LIMB_BITS])


@given(st.lists(st.lists(st.integers(0, 199), max_size=10), max_size=8))
def test_gf2matrix_from_masks_matches_from_rows(rows):
    n_cols = 200
    masks = [mono.mask_of(mono.make(r)) for r in rows]
    a = GF2Matrix.from_masks(masks, n_cols)
    b = GF2Matrix.from_rows([sorted(set(r)) for r in rows], n_cols)
    assert (a.to_dense() == b.to_dense()).all()
    # Row masks round-trip through the packed words.
    for i, mask in enumerate(masks):
        assert a.row_mask(i) == mask
        assert a.row_cols(i) == mono.bits_of(mask)


def test_gf2matrix_from_masks_validates():
    with pytest.raises(ValueError):
        GF2Matrix.from_masks([-1], 10)
    with pytest.raises(IndexError):
        GF2Matrix.from_masks([1 << 10], 10)
    with pytest.raises(IndexError):
        GF2Matrix(2, 8).row_mask(5)


# -- polynomial-level round trip ----------------------------------------------


def test_random_polynomial_products_match_reference():
    """Poly arithmetic over masked monomials matches a set-based oracle."""
    rng = random.Random(42)

    def rand_poly(n_vars, n_terms):
        return Poly(
            mono.make(rng.sample(range(n_vars), rng.randint(0, 3)))
            for _ in range(n_terms)
        )

    def oracle_mul(p, q):
        acc = set()
        for a in p.monomials:
            for b in q.monomials:
                m = tuple_mul(a, b)
                acc.symmetric_difference_update({m})
        return acc

    for n_vars in (10, 63, 100, 300):  # below, at, and above one limb
        for _ in range(50):
            p, q = rand_poly(n_vars, 4), rand_poly(n_vars, 4)
            assert (p * q).monomials == frozenset(oracle_mul(p, q))


def test_poly_evaluate_agrees_across_boundary():
    rng = random.Random(7)
    n_vars = mono.LIMB_BITS + 10
    for _ in range(30):
        p = Poly(
            mono.make(rng.sample(range(n_vars), rng.randint(0, 3)))
            for _ in range(5)
        )
        assignment = [rng.randint(0, 1) for _ in range(n_vars)]
        # Oracle: evaluate monomial-by-monomial with plain sets.
        want = 0
        for m in p.monomials:
            want ^= int(all(assignment[v] for v in m))
        assert p.evaluate(assignment) == want
        amask = mono.assignment_mask(assignment)
        assert p.evaluate_mask(amask) == want


def test_support_mask_matches_variables():
    p = Poly([mono.make([1, 70]), mono.make([128, 500]), mono.ONE])
    assert p.variables() == frozenset([1, 70, 128, 500])
    assert p.support_mask() == (1 << 1) | (1 << 70) | (1 << 128) | (1 << 500)
    assert mono.bits_of(p.support_mask()) == sorted(p.variables())
