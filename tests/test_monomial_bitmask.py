"""Bitmask fast path vs tuple fallback equivalence for monomials.

The monomial layer shadows every monomial below ``MASK_BITS`` variables
with an int bitmask and routes mul/divides/lcm/remove through bitwise
ops.  These property tests pin the fast path to the pure-tuple semantics,
including monomials that straddle the 64-variable boundary (where one
operand is masked and the other is not).
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.anf import monomial as mono
from repro.anf.polynomial import Poly

# Variable universes below, above, and straddling the mask boundary.
small_vars = st.lists(st.integers(0, mono.MASK_BITS - 1), max_size=8)
wide_vars = st.lists(st.integers(0, mono.MASK_BITS + 40), max_size=8)


def tuple_mul(a, b):
    """Reference implementation: sorted union of variable sets."""
    return tuple(sorted(set(a) | set(b)))


def tuple_divides(a, b):
    return set(a).issubset(set(b))


# -- reference equivalence ----------------------------------------------------


@given(wide_vars, wide_vars)
def test_mul_matches_tuple_reference(a, b):
    ma, mb = mono.make(a), mono.make(b)
    assert mono.mul(ma, mb) == tuple_mul(ma, mb)


@given(wide_vars, wide_vars)
def test_divides_matches_tuple_reference(a, b):
    ma, mb = mono.make(a), mono.make(b)
    assert mono.divides(ma, mb) == tuple_divides(ma, mb)


@given(wide_vars, wide_vars)
def test_lcm_matches_tuple_reference(a, b):
    ma, mb = mono.make(a), mono.make(b)
    assert mono.lcm(ma, mb) == tuple_mul(ma, mb)


@given(wide_vars)
def test_remove_matches_tuple_reference(a):
    m = mono.make(a)
    for v in m:
        assert mono.remove(m, v) == tuple(x for x in m if x != v)


@given(small_vars, st.lists(st.integers(mono.MASK_BITS, mono.MASK_BITS + 20), max_size=4))
def test_mul_across_mask_boundary(small, big):
    """Masked x unmasked operands still produce the sorted-tuple union."""
    ma, mb = mono.make(small), mono.make(big)
    assert mono.mask_of(ma) >= 0
    if mb:
        assert mono.mask_of(mb) == -1
    assert mono.mul(ma, mb) == tuple_mul(ma, mb)
    assert mono.mul(mb, ma) == tuple_mul(ma, mb)


# -- mask round trips ---------------------------------------------------------


@given(small_vars)
def test_mask_round_trip(a):
    m = mono.make(a)
    mask = mono.mask_of(m)
    assert mask >= 0
    assert mono.from_mask(mask) == m
    # Interned result is identity-stable.
    assert mono.intern(m) is mono.from_mask(mask)


def test_mask_of_wide_monomial_is_sentinel():
    m = mono.make([1, mono.MASK_BITS + 3])
    assert mono.mask_of(m) == -1
    assert mono.intern(m) == m


def test_from_mask_rejects_out_of_range():
    with pytest.raises(ValueError):
        mono.from_mask(-1)
    with pytest.raises(ValueError):
        mono.from_mask(1 << mono.MASK_BITS)


def test_raw_tuples_interoperate_with_interned():
    """Raw tuples built by callers compare and hash like interned ones."""
    raw = (2, 5)
    interned = mono.make([5, 2])
    assert raw == interned
    assert hash(raw) == hash(interned)
    assert mono.mul(raw, (3,)) == (2, 3, 5)


# -- polynomial-level round trip ---------------------------------------------


def test_random_polynomial_products_match_reference():
    """Poly arithmetic over masked monomials matches a set-based oracle."""
    rng = random.Random(42)

    def rand_poly(n_vars, n_terms):
        return Poly(
            mono.make(rng.sample(range(n_vars), rng.randint(0, 3)))
            for _ in range(n_terms)
        )

    def oracle_mul(p, q):
        acc = set()
        for a in p.monomials:
            for b in q.monomials:
                m = tuple_mul(a, b)
                acc.symmetric_difference_update({m})
        return acc

    for n_vars in (10, 63, 100):  # below, at, and above the boundary
        for _ in range(50):
            p, q = rand_poly(n_vars, 4), rand_poly(n_vars, 4)
            assert (p * q).monomials == frozenset(oracle_mul(p, q))


def test_poly_evaluate_agrees_across_boundary():
    rng = random.Random(7)
    n_vars = mono.MASK_BITS + 10
    for _ in range(30):
        p = Poly(
            mono.make(rng.sample(range(n_vars), rng.randint(0, 3)))
            for _ in range(5)
        )
        assignment = [rng.randint(0, 1) for _ in range(n_vars)]
        # Oracle: evaluate monomial-by-monomial with plain sets.
        want = 0
        for m in p.monomials:
            want ^= int(all(assignment[v] for v in m))
        assert p.evaluate(assignment) == want
