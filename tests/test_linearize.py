"""Tests for linearisation and GJE fact extraction (Table I machinery)."""

from repro.anf import Poly, Ring, parse_system
from repro.anf.parser import parse_polynomial
from repro.core import Linearization, extract_facts, gauss_jordan


def polys_of(text):
    _, polys = parse_system(text)
    return polys


def test_columns_ordered_descending_deglex_constant_last():
    polys = polys_of("x1*x2 + x3 + 1")
    lin = Linearization(polys)
    assert lin.columns[0] == (1, 2)
    assert lin.columns[-1] == ()


def test_table1_column_order():
    """The expanded Table I system has columns x1x2x3, x2x3, x1x3, x1x2, ..."""
    base = polys_of("x1*x2 + x1 + 1\nx2*x3 + x3")
    expanded = list(base)
    ring = Ring(4)
    for mult in ["x1", "x2", "x3"]:
        m = parse_polynomial(mult, ring)
        for p in base:
            q = p * m
            if not q.is_zero():
                expanded.append(q)
    lin = Linearization(expanded)
    names = [
        "*".join("x{}".format(v) for v in m) if m else "1" for m in lin.columns
    ]
    assert names == ["x1*x2*x3", "x2*x3", "x1*x3", "x1*x2", "x3", "x2", "x1", "1"]


def test_matrix_roundtrip():
    polys = polys_of("x1*x2 + x3\nx3 + 1")
    lin = Linearization(polys)
    m = lin.to_matrix(polys)
    assert lin.rows_to_polys(m) == polys


def test_gauss_jordan_table1():
    """Reducing the degree-1 expansion of Table I yields the paper's facts."""
    base = polys_of("x1*x2 + x1 + 1\nx2*x3 + x3")
    expanded = list(base)
    ring = Ring(4)
    for mult in ["x1", "x2", "x3"]:
        m = parse_polynomial(mult, ring)
        for p in base:
            q = p * m
            if not q.is_zero():
                expanded.append(q)
    reduced = gauss_jordan(expanded)
    texts = {p.to_string() for p in reduced}
    # The last three rows of Table I(b): x3, x2, x1 + 1.
    assert "x3" in texts
    assert "x2" in texts
    assert "x1 + 1" in texts


def test_gauss_jordan_empty():
    assert gauss_jordan([]) == []
    assert gauss_jordan([Poly.zero()]) == []


def test_extract_facts_classification():
    linear, monos = extract_facts(polys_of("""
x1 + x2 + 1
x1*x2 + 1
x1*x2*x3
x1*x2 + x3
"""))
    assert linear == polys_of("x1 + x2 + 1")
    assert set(monos) == set(polys_of("x1*x2 + 1\nx1*x2*x3"))


def test_packed_matrix_matches_scalar_oracle():
    """Bulk encode/decode must agree with the per-cell/per-row seed path,
    including beyond 64 variables (multi-limb masks, multi-word rows)."""
    import random

    from repro.anf.polynomial import Poly

    rng = random.Random(3)
    polys = []
    for _ in range(40):
        ms = []
        for _ in range(rng.randrange(1, 6)):
            deg = rng.randrange(0, 4)
            ms.append(tuple(sorted(rng.sample(range(0, 130), deg))))
        polys.append(Poly(ms))
    polys = [p for p in polys if not p.is_zero()]
    lin = Linearization(polys)
    packed = lin.to_matrix(polys)
    scalar = lin.to_matrix_scalar(polys)
    assert (packed.to_dense() == scalar.to_dense()).all()
    packed.rref()
    assert lin.rows_to_polys(packed) == lin.rows_to_polys_scalar(packed)


def test_to_matrix_unknown_monomial_raises():
    polys = polys_of("x1*x2 + x3")
    lin = Linearization(polys)
    import pytest

    with pytest.raises(KeyError):
        lin.to_matrix(polys_of("x4"))


def test_extract_facts_drops_interned_constant():
    """The constant filter is identity against ``mono.ONE`` — a bare
    ``m ⊕ 1`` classifies as a monomial fact, a two-monomial nonlinear
    row without a constant does not."""
    _, monos = extract_facts(polys_of("x1*x2 + 1"))
    assert monos == polys_of("x1*x2 + 1")
    _, monos = extract_facts(polys_of("x1*x2 + x3*x4"))
    assert monos == []


def test_gje_consistency_preserves_solutions():
    """Row reduction never changes the solution set."""
    polys = polys_of("x1*x2 + x3\nx1 + x2\nx2*x3 + x1 + 1")
    reduced = gauss_jordan(polys)
    import itertools
    for bits in itertools.product([0, 1], repeat=4):
        assignment = list(bits)
        orig_ok = all(p.evaluate(assignment) == 0 for p in polys)
        red_ok = all(p.evaluate(assignment) == 0 for p in reduced)
        assert orig_ok == red_ok
