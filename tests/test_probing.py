"""Tests for failed-literal probing (the section-V lookahead plug-in)."""

import itertools

import pytest

from repro.anf import AnfSystem, Poly, Ring, parse_system
from repro.core import Bosphorus, Config, propagate, run_probing


def system_of(text):
    ring, polys = parse_system(text)
    sys_ = AnfSystem(ring, polys)
    propagate(sys_)
    return sys_


def test_failed_literal_yields_unit():
    # x1 = 0 makes x1*x2 + x1 + 1 into 1 = 0, so probing learns x1 = 1.
    sys_ = system_of("x1*x2 + x1 + 1\nx1*x3 + x2 + x3")
    result = run_probing(sys_)
    assert any(p.as_unit() == (1, 1) for p in result.facts)
    assert result.failed_literals >= 1


def test_both_branches_dead_is_contradiction():
    # {x1x2 + x3, x1x2 + x3 + 1} is UNSAT, but neither polynomial alone
    # yields a propagation fact — only probing (or GJE) sees it.
    ring, polys = parse_system("x1*x2 + x3\nx1*x2 + x3 + 1")
    sys2 = AnfSystem(ring, polys)
    propagate(sys2)
    assert len(sys2) == 2  # propagation alone is blind here
    result = run_probing(sys2)
    assert result.contradiction
    assert Poly.one() in result.facts


def test_agreement_yields_unit():
    # Whatever x1 is, x3 ends up 1:
    #   x1=0: x3 + 1; x1=1: x2 forced... build explicitly.
    sys_ = system_of("x1*x3 + x3 + x1 + 1")
    # x1=0 -> x3+1 -> x3=1. x1=1 -> x3+x3+1+1 = 0 -> nothing. No agreement.
    result = run_probing(sys_)
    # x1=0 branch forces x3=1 but x1=1 branch leaves x3 free: no fact.
    assert all(p.as_unit() != (3, 1) for p in result.facts)

    sys2 = system_of("x1*x2 + x2 + 1\nx1*x2 + x1 + x2 + 1")
    # x1=0: x2+1 -> x2=1.  x1=1: first gives 1 -> wait that contradicts.
    result2 = run_probing(sys2)
    units = {p.as_unit() for p in result2.facts if p.as_unit()}
    assert units  # something was learnt


def test_equivalence_agreement():
    # x2 = x1 ⊕ 1 forced through a nonlinear detour:
    # x1=0 -> x2=1; x1=1 -> x2=0.
    sys_ = system_of("x1*x2 + x1 + x2 + 1")
    # x1=0: x2+1=0 -> x2=1. x1=1: x2+1+x2+1 = 0 -> free. No equivalence.
    result = run_probing(sys_)
    # Build a case with both branches forcing x2:
    ring, polys = parse_system("x1*x2 + x2 + x1*x3 + x3\nx2 + x3 + 1")
    sys2 = AnfSystem(ring, polys)
    propagate(sys2)
    run_probing(sys2)  # must not crash; facts may be empty


def test_facts_are_sound():
    text = """
x1*x2 + x3
x2*x3 + x1 + 1
x1*x3 + x2 + x3
"""
    sys_ = system_of(text)
    result = run_probing(sys_)
    _, polys = parse_system(text)
    solutions = [
        bits for bits in itertools.product([0, 1], repeat=4)
        if all(p.evaluate(list(bits)) == 0 for p in polys)
    ]
    for fact in result.facts:
        for sol in solutions:
            assert fact.evaluate(list(sol)) == 0, (fact, sol)


def test_probe_limit_respected():
    text = "\n".join(
        "x{}*x{} + x{}".format(i, i + 1, i + 2) for i in range(1, 30)
    )
    sys_ = system_of(text)
    result = run_probing(sys_, max_probes=5)
    assert result.probed <= 5


def test_empty_system_no_probes():
    sys_ = AnfSystem(Ring(4))
    result = run_probing(sys_)
    assert result.probed == 0
    assert result.facts == []


def test_probing_does_not_mutate_master():
    sys_ = system_of("x1*x2 + x3\nx2 + x3")
    before = list(sys_.polynomials)
    state_before = [sys_.state.value(v) for v in range(sys_.state.n_vars)]
    run_probing(sys_)
    assert list(sys_.polynomials) == before
    assert [sys_.state.value(v) for v in range(sys_.state.n_vars)] == state_before


def test_probing_in_bosphorus_loop():
    ring, polys = parse_system("""
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
""")
    cfg = Config(use_xl=False, use_elimlin=False, use_sat=False,
                 use_probing=True, probe_limit=8, max_iterations=8)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    # Probing + propagation alone solve the worked example.
    processed = {p.to_string() for p in result.processed_anf}
    assert {"x1 + 1", "x2 + 1", "x3 + 1", "x4 + 1", "x5"} <= processed
    assert "probing" in result.facts.summary()
