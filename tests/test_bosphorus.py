"""End-to-end tests for the Bosphorus workflow (paper sections II-E, III)."""

import itertools

import pytest

from repro.anf import Poly, Ring, parse_system
from repro.core import (
    Bosphorus,
    Config,
    preprocess_anf,
    preprocess_cnf,
    STATUS_SAT,
    STATUS_UNSAT,
)
from repro.sat import CnfFormula, Solver, mk_lit
from repro.sat.types import TRUE

PAPER_EXAMPLE = """
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
"""


def test_paper_example_solves_to_unique_solution():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus().preprocess_anf(ring, polys)
    assert result.status == STATUS_SAT
    assert result.solution is not None
    assert result.solution.values[1:6] == [1, 1, 1, 1, 0]


def test_paper_example_processed_anf_is_system_2():
    """The processed ANF must be the paper's system (2): five units."""
    ring, polys = parse_system(PAPER_EXAMPLE)
    cfg = Config(stop_on_solution=False)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    processed = {p.to_string() for p in result.processed_anf}
    assert {"x1 + 1", "x2 + 1", "x3 + 1", "x4 + 1", "x5"} <= processed


def test_solution_satisfies_original_system():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus().preprocess_anf(ring, polys)
    assert result.solution.satisfies(polys)


def test_unsat_input_detected():
    ring, polys = parse_system("x1\nx1 + 1")
    result = Bosphorus().preprocess_anf(ring, polys)
    assert result.status == STATUS_UNSAT


def test_unsat_through_learning():
    # x1+x2=1, x2+x3=1, x1+x3=1 is an odd parity cycle: UNSAT via GJE.
    ring, polys = parse_system("x1 + x2 + 1\nx2 + x3 + 1\nx1 + x3 + 1")
    result = Bosphorus().preprocess_anf(ring, polys)
    assert result.status == STATUS_UNSAT


def test_trivially_empty_system_is_fixed_point():
    result = Bosphorus().preprocess_anf(Ring(3), [])
    assert result.status != STATUS_UNSAT
    assert result.iterations <= 2


def test_facts_have_sources():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus(Config(stop_on_solution=False)).preprocess_anf(ring, polys)
    summary = result.facts.summary()
    assert sum(summary.values()) == len(result.facts)
    assert "xl" in summary  # XL learns facts on the paper example


def test_all_facts_sound_on_paper_example():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus(Config(stop_on_solution=False)).preprocess_anf(ring, polys)
    # Unique solution: x1..x4=1, x5=0.
    solution = [0, 1, 1, 1, 1, 0]
    for fact in result.facts.polynomials():
        padded = solution + [0] * 10
        assert fact.evaluate(padded) == 0, fact


def test_techniques_can_be_disabled():
    ring, polys = parse_system(PAPER_EXAMPLE)
    cfg = Config(use_xl=False, use_elimlin=False)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    assert result.status in (STATUS_SAT, "unknown")


def test_groebner_technique_optional():
    ring, polys = parse_system("x1*x2 + 1\nx2 + x3")
    cfg = Config(use_groebner=True, use_sat=False, use_xl=False, use_elimlin=False)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    # Buchberger alone derives the units.
    assert result.status != STATUS_UNSAT
    assert result.system.state.value(1) == 1


def test_output_cnf_solvable_to_same_answer():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus(Config(stop_on_solution=False)).preprocess_anf(ring, polys)
    solver = Solver()
    solver.ensure_vars(result.cnf.n_vars)
    for clause in result.cnf.clauses:
        solver.add_clause(clause)
    assert solver.solve() is True
    model = [1 if v == TRUE else 0 for v in solver.model]
    assert model[1:6] == [1, 1, 1, 1, 0]


def test_max_iterations_respected():
    ring, polys = parse_system(PAPER_EXAMPLE)
    result = Bosphorus(Config(max_iterations=1, stop_on_solution=False)).preprocess_anf(
        ring, polys
    )
    assert result.iterations == 1


# -- CNF preprocessor mode (paper section III-D) ---------------------------------


def _xor_cnf(formula, variables, rhs):
    for pattern in range(1 << len(variables)):
        if bin(pattern).count("1") & 1 == rhs:
            continue
        formula.add_clause(
            [mk_lit(variables[i], bool(pattern >> i & 1)) for i in range(len(variables))]
        )


def test_cnf_preprocessing_detects_parity_unsat():
    """An odd XOR cycle is UNSAT; Bosphorus finds it algebraically."""
    formula = CnfFormula(3)
    _xor_cnf(formula, [0, 1], 1)
    _xor_cnf(formula, [1, 2], 1)
    _xor_cnf(formula, [0, 2], 1)
    result = preprocess_cnf(formula)
    assert result.status == STATUS_UNSAT
    assert result.augmented_cnf is not None
    assert [] in result.augmented_cnf.clauses


def test_cnf_preprocessing_sat_instance():
    formula = CnfFormula(3)
    formula.add_clause([mk_lit(0)])
    formula.add_clause([mk_lit(0, True), mk_lit(1)])
    formula.add_clause([mk_lit(1, True), mk_lit(2, True)])
    result = preprocess_cnf(formula)
    assert result.status in (STATUS_SAT, "unknown")
    if result.solution is not None:
        assert len(result.solution.values) == 3
        bits = result.solution.values
        for clause in formula.clauses:
            assert any(bits[l >> 1] ^ (l & 1) for l in clause)


def test_augmented_cnf_contains_original_clauses():
    formula = CnfFormula(3)
    formula.add_clause([mk_lit(0), mk_lit(1)])
    result = preprocess_cnf(formula)
    if result.status == STATUS_UNSAT:
        return
    assert [mk_lit(0), mk_lit(1)] in result.augmented_cnf.clauses


def test_augmented_cnf_equisatisfiable():
    formula = CnfFormula(4)
    _xor_cnf(formula, [0, 1, 2], 1)
    formula.add_clause([mk_lit(3)])
    result = preprocess_cnf(formula)
    solver = Solver()
    aug = result.augmented_cnf
    solver.ensure_vars(aug.n_vars)
    ok = True
    for c in aug.clauses:
        ok = solver.add_clause(c) and ok
    verdict = solver.solve() if ok else False
    assert verdict is True  # the original formula is satisfiable


def test_convenience_wrappers():
    ring, polys = parse_system("x1 + 1")
    result = preprocess_anf(ring, polys)
    assert result.status != STATUS_UNSAT


def test_result_reports_run_wide_karnaugh_cache_stats():
    """The shared converter's cache counters are summed over every
    conversion of the run (inner-SAT iterations + the final CNF), not
    just the last one."""
    ring, polys = parse_system(PAPER_EXAMPLE)
    # SAT-only so the inner conversions actually see Karnaugh chunks
    # (XL solves this system outright before any conversion runs).
    cfg = Config(
        use_xl=False, use_elimlin=False, stop_on_solution=False
    )
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    hits = result.stats["karnaugh_cache_hits"]
    misses = result.stats["karnaugh_cache_misses"]
    assert misses >= 1  # something was minimised during the run
    final = result.conversion.stats
    assert hits >= final.karnaugh_cache_hits
    # The first inner-SAT conversion runs cold, so its misses must show
    # in the run-wide total even when the final conversion (warm cache,
    # or an all-units system) reports none.
    assert misses >= final.karnaugh_cache_misses
    assert (hits + misses) > (
        final.karnaugh_cache_hits + final.karnaugh_cache_misses
    )


# -- result.stats schema (repro.obs.schema) ---------------------------------


def test_result_stats_keys_are_all_declared():
    """Every key a preprocessing run emits — top-level and per-iteration
    technique entries — is declared in the frozen schema, so dashboards
    and downstream parsers can rely on the key set."""
    from repro.obs import undeclared_stats_keys, validate_stats

    ring, polys = parse_system(PAPER_EXAMPLE)
    cfg = Config(use_groebner=True, use_probing=True, stop_on_solution=False)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    assert undeclared_stats_keys(result.stats) == []
    validate_stats(result.stats)  # must not raise


def test_augmented_cnf_stats_keys_are_all_declared():
    from repro.obs import undeclared_stats_keys

    formula = CnfFormula(3)
    _xor_cnf(formula, [0, 1, 2], 1)
    result = preprocess_cnf(formula)
    assert undeclared_stats_keys(result.stats) == []


def test_early_exit_run_still_reports_conversion_stats():
    """Regression: a run that exits mid-iteration (solution found by the
    inner SAT step, stop_on_solution) must still report the conversion
    cache counters of the conversions it performed — the old manual
    accumulation only ran on the fixed-point path and dropped them."""
    ring, polys = parse_system(PAPER_EXAMPLE)
    # SAT-only: the first iteration's inner-SAT conversion runs cold,
    # then the solver finds the unique solution and the loop early-exits.
    cfg = Config(use_xl=False, use_elimlin=False, stop_on_solution=True)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    assert result.status == STATUS_SAT
    counted = (
        result.stats["karnaugh_cache_hits"]
        + result.stats["karnaugh_cache_misses"]
        + result.stats["conversion_disk_hits"]
    )
    assert counted >= 1


def test_unsat_exit_still_reports_conversion_stats():
    """The contradiction exit path reports conversion counters too."""
    ring, polys = parse_system(
        "x1*x2 + x3\nx1 + x2 + x3 + 1\nx1*x3 + x2 + 1\nx1 + 1\nx2\nx3 + 1"
    )
    cfg = Config(use_xl=False, use_elimlin=False)
    result = Bosphorus(cfg).preprocess_anf(ring, polys)
    for key in (
        "karnaugh_cache_hits",
        "karnaugh_cache_misses",
        "karnaugh_disk_hits",
        "conversion_disk_hits",
    ):
        assert key in result.stats  # present (and schema-typed) on UNSAT too
