"""Tests for the Speck32/64 extension family."""

import random

import pytest

from repro.ciphers import speck
from repro.core import Bosphorus, Config, Solution

TEST_KEY = [0x0100, 0x0908, 0x1110, 0x1918]


def test_published_test_vector():
    assert speck.encrypt((0x6574, 0x694C), TEST_KEY, 22) == (0xA868, 0x42F2)


def test_decrypt_inverts_encrypt():
    rng = random.Random(1)
    for _ in range(10):
        key = [rng.getrandbits(16) for _ in range(4)]
        pt = (rng.getrandbits(16), rng.getrandbits(16))
        rounds = rng.randint(1, 22)
        assert speck.decrypt(speck.encrypt(pt, key, rounds), key, rounds) == pt


def test_key_schedule_first_key_is_k0():
    ks = speck.key_schedule([7, 8, 9, 10], 5)
    assert ks[0] == 7
    assert len(ks) == 5


def test_instance_witness_satisfies_equations():
    inst = speck.generate_instance(2, 3, seed=5)
    assert Solution(inst.witness).satisfies(inst.polynomials)


def test_instance_ciphertexts_match_reference():
    inst = speck.generate_instance(2, 4, seed=6)
    for pt, ct in zip(inst.plaintexts, inst.ciphertexts):
        assert speck.encrypt(pt, inst.key_words, 4) == ct


def test_equations_degree_at_most_two():
    inst = speck.generate_instance(1, 4, seed=2)
    assert max(p.degree() for p in inst.polynomials) <= 2


def test_bosphorus_recovers_consistent_key():
    inst = speck.generate_instance(2, 2, seed=9)
    cfg = Config(xl_sample_bits=12, elimlin_sample_bits=12,
                 sat_conflict_start=5000, sat_conflict_max=20000,
                 max_iterations=5)
    result = Bosphorus(cfg).preprocess_anf(inst.ring, inst.polynomials)
    assert result.status == "sat"
    assert result.solution.satisfies(inst.polynomials)
    key_words = []
    for w in range(4):
        word = 0
        for b in range(16):
            word |= result.solution[w * 16 + b] << b
        key_words.append(word)
    for pt, ct in zip(inst.plaintexts, inst.ciphertexts):
        assert speck.encrypt(pt, key_words, inst.rounds) == ct
