"""End-to-end solver service: the JSON-lines protocol over a real
asyncio server, against real worker processes.

The acceptance path: a client submits a mix of ANF and DIMACS jobs over
the socket and the verdicts match in-process solving; a mid-flight
cancel stops the worker within one conflict slice; a second server
started on the same cache directory reports disk hits and reproduces
the CNF bit-for-bit.
"""

import asyncio
import random
import time

import pytest

from repro.server import protocol
from repro.server.app import ServerClient, SolverServer
from repro.server.jobs import JobSpec, execute_job

ANF_SAT = "x0*x1 + x2 + 1\nx1*x2 + x0\nx0 + x1 + x2 + 1\n"
ANF_UNSAT = "x0\nx0 + 1\n"
DIMACS_SAT = "p cnf 3 2\n1 -2 0\n2 3 0\n"
DIMACS_UNSAT = "p cnf 1 2\n1 0\n-1 0\n"


def _hard_instance(n=200, ratio=4.26, seed=7):
    rng = random.Random(seed)
    m = int(n * ratio)
    lines = ["p cnf {} {}".format(n, m)]
    for _ in range(m):
        vs = rng.sample(range(1, n + 1), 3)
        lines.append(
            " ".join(str(v if rng.random() < 0.5 else -v) for v in vs) + " 0"
        )
    return "\n".join(lines) + "\n"


def test_mixed_jobs_match_in_process_solving(tmp_path):
    jobs = [
        ("anf", ANF_SAT),
        ("anf", ANF_UNSAT),
        ("dimacs", DIMACS_SAT),
        ("dimacs", DIMACS_UNSAT),
        ("anf", ANF_SAT),
        ("dimacs", DIMACS_SAT),
    ]
    # The ground truth, computed in-process through the same pipeline.
    expected = [
        execute_job(JobSpec(job_id=1, fmt=fmt, text=text))["verdict"]
        for fmt, text in jobs
    ]

    async def run():
        async with SolverServer(jobs=2, cache_dir=str(tmp_path)) as server:
            async with await ServerClient.connect(
                server.host, server.port
            ) as client:
                ids = [
                    await client.submit(fmt, text) for fmt, text in jobs
                ]
                return [
                    (await client.wait_result(job, timeout=120))["verdict"]
                    for job in ids
                ]

    verdicts = asyncio.run(run())
    assert verdicts == expected


def test_mid_flight_cancel_stops_within_a_slice():
    hard = _hard_instance()

    async def run():
        async with SolverServer(jobs=1) as server:
            async with await ServerClient.connect(
                server.host, server.port
            ) as client:
                job = await client.submit("dimacs", hard, preprocess=False)
                # Wait until the worker reports it is actually solving.
                ev = await client.progress(job)
                while ev.get("stage") != "solving":
                    ev = await client.progress(job)
                await client.cancel(job)
                t0 = time.monotonic()
                result = await client.wait_result(job, timeout=30)
                return result, time.monotonic() - t0

    result, elapsed = asyncio.run(run())
    assert result["verdict"] == "cancelled"
    assert elapsed < 5.0


def test_warm_server_restart_reports_disk_hits_bit_for_bit(tmp_path):
    async def run_server_once():
        async with SolverServer(jobs=1, cache_dir=str(tmp_path)) as server:
            async with await ServerClient.connect(
                server.host, server.port
            ) as client:
                job = await client.submit("anf", ANF_SAT)
                return await client.wait_result(job, timeout=120)

    cold = asyncio.run(run_server_once())
    warm = asyncio.run(run_server_once())  # brand-new server, same cache dir
    assert cold["verdict"] == warm["verdict"] == "sat"
    assert warm["stats"]["conversion_disk_hits"] > 0
    assert warm["cnf_sha256"] == cold["cnf_sha256"]


def test_ping_stats_and_protocol_errors(tmp_path):
    async def run():
        async with SolverServer(jobs=1, cache_dir=str(tmp_path)) as server:
            async with await ServerClient.connect(
                server.host, server.port
            ) as client:
                await client.ping()
                stats = await client.stats()
                assert stats["workers"] == 1
                assert stats["cache_dir"] == str(tmp_path)

                # Unknown op → protocol-level error, connection stays up.
                client._writer.write(b'{"op": "frobnicate"}\n')
                await client._writer.drain()
                ev = await client._read_until(
                    lambda e: e.get("event") == "error" and "job" not in e
                )
                assert "frobnicate" in ev["error"]

                # Bad JSON → protocol-level error, connection stays up.
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                ev = await client._read_until(
                    lambda e: e.get("event") == "error" and "job" not in e
                )
                assert "JSON" in ev["error"]

                # Bad submit (unknown format) → rejected before queueing.
                with pytest.raises(protocol.ProtocolError):
                    await client.submit("cnf", DIMACS_SAT)

                # The connection still works after all of that.
                job = await client.submit(
                    "dimacs", DIMACS_SAT, preprocess=False
                )
                result = await client.wait_result(job, timeout=60)
                assert result["verdict"] == "sat"

    asyncio.run(run())


def test_disconnect_cancels_live_jobs():
    hard = _hard_instance()

    async def run():
        async with SolverServer(jobs=1) as server:
            client = await ServerClient.connect(server.host, server.port)
            job = await client.submit("dimacs", hard, preprocess=False)
            ev = await client.progress(job)
            while ev.get("stage") != "solving":
                ev = await client.progress(job)
            await client.close()  # drop the connection mid-solve
            pool = server.pool
            deadline = time.monotonic() + 15
            while pool.stats()["running"] > 0:
                assert time.monotonic() < deadline, (
                    "disconnect did not cancel the running job"
                )
                await asyncio.sleep(0.1)

    asyncio.run(run())


def test_two_clients_share_one_pool(tmp_path):
    async def run():
        async with SolverServer(jobs=2, cache_dir=str(tmp_path)) as server:
            a = await ServerClient.connect(server.host, server.port)
            b = await ServerClient.connect(server.host, server.port)
            async with a, b:
                ja = await a.submit("dimacs", DIMACS_SAT, preprocess=False)
                jb = await b.submit("dimacs", DIMACS_UNSAT, preprocess=False)
                ra = await a.wait_result(ja, timeout=60)
                rb = await b.wait_result(jb, timeout=60)
                assert ra["verdict"] == "sat"
                assert rb["verdict"] == "unsat"
                assert ja != jb  # pool-global ids

    asyncio.run(run())
