"""BatchScheduler and the parallel Table II path: many instances over a
bounded pool, with verdicts and PAR-2 math identical to the sequential
run (scored under the deterministic unit-time proxy, since wall-clock
seconds are the one thing parallelism legitimately changes).
"""

import multiprocessing
import os
import threading

import pytest

from repro.core.config import Config
from repro.experiments import par2_score, run_family, satcomp_problems
from repro.experiments.runner import Problem
from repro.portfolio import (
    BatchItemError,
    BatchScheduler,
    batch_cancel,
    default_jobs,
)
from repro.portfolio.batch import mp_context

FAST = Config(
    xl_sample_bits=8,
    elimlin_sample_bits=8,
    sat_conflict_start=500,
    sat_conflict_step=500,
    sat_conflict_max=1000,
    max_iterations=2,
)


def _square(x):
    return x * x


def _raise_on_seven(x):
    if x == 7:
        raise ValueError("seven")
    return x


def test_map_preserves_item_order_sequential():
    assert BatchScheduler(1).map(_square, range(10)) == [
        x * x for x in range(10)
    ]


def test_map_preserves_item_order_parallel():
    assert BatchScheduler(3).map(_square, range(20)) == [
        x * x for x in range(20)
    ]


@pytest.mark.parametrize("jobs", [1, 2])
def test_map_captures_worker_exceptions(jobs):
    # Regression: a poison item used to propagate out of future.result()
    # and abort the whole batch, losing every sibling's result.  Now it
    # is captured into a BatchItemError in its own slot.
    results = BatchScheduler(jobs).map(_raise_on_seven, range(10))
    assert len(results) == 10
    err = results[7]
    assert isinstance(err, BatchItemError)
    assert err.index == 7
    assert err.kind == "ValueError"
    assert "seven" in err.error
    for x in range(10):
        if x != 7:
            assert results[x] == x


def _first_sat_probe(x):
    evt = batch_cancel()
    if evt is not None and evt.is_set():
        return ("cancelled", x)
    return ("sat" if x == 3 else "unknown", x)


def test_map_stop_when_cancels_remaining_sequential():
    # The first-win protocol on the deterministic jobs=1 path: once
    # stop_when hits, later items observe the cancel event and stand
    # down instead of doing real work.
    cancel = mp_context().Event()
    results = BatchScheduler(1).map(
        _first_sat_probe,
        range(8),
        cancel=cancel,
        stop_when=lambda r: r[0] == "sat",
    )
    assert cancel.is_set()
    assert [r[0] for r in results[:4]] == ["unknown"] * 3 + ["sat"]
    assert all(r[0] == "cancelled" for r in results[4:])


def test_map_stop_when_parallel_still_returns_every_slot():
    cancel = mp_context().Event()
    results = BatchScheduler(2).map(
        _first_sat_probe,
        range(8),
        cancel=cancel,
        stop_when=lambda r: r[0] == "sat",
    )
    assert cancel.is_set()
    assert len(results) == 8
    assert ("sat", 3) in results
    assert all(r[0] in ("sat", "unknown", "cancelled") for r in results)


def test_run_family_poison_problem_degrades_to_unsolved():
    # One pathological instance must not kill the grid: the broken
    # problem (no ring) scores as unsolved-at-timeout, the healthy one
    # still gets its verdict.
    good = satcomp_problems(scale=0.3, per_family=1, seed=5)[:1]
    poison = Problem("poison", "anf", ring=None, polynomials=None)
    out = run_family(
        good + [poison], ("minisat",), timeout_s=10.0, bosphorus_config=FAST,
        jobs=2,
    )
    for runs in out.values():
        assert len(runs) == 2
        good_verdict, _ = runs[0]
        poison_verdict, poison_seconds = runs[1]
        assert good_verdict in (True, False)
        assert poison_verdict is None
        assert poison_seconds == 10.0


def test_single_item_runs_inline():
    assert BatchScheduler(8).map(_square, [5]) == [25]


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_run_family_empty_problem_list_keeps_grid_keys():
    # Regression: the cell-based rewrite must still emit every
    # (personality, use_bosphorus) key for an empty family — the report
    # layer renders all-zero score lines from them.
    out = run_family([], ("minisat", "cms"), timeout_s=1.0, jobs=1)
    assert set(out) == {(p, b) for p in ("minisat", "cms") for b in (False, True)}
    assert all(runs == [] for runs in out.values())


# -- hard worker death ------------------------------------------------------


def _exit_on_zero(x):
    if x == 0:
        os._exit(1)  # simulate an OOM-kill / hard crash mid-item
    return x * 10


def test_map_isolates_hard_worker_death():
    # Regression: a worker dying mid-item (os._exit, OOM-kill) used to
    # poison the whole pool — BrokenProcessPool failed every pending
    # future, so healthy siblings came back as BatchItemErrors too.  Now
    # the pool is respawned, not-yet-started items re-run, and only the
    # genuinely dead item keeps its error.
    results = BatchScheduler(2).map(_exit_on_zero, range(6))
    assert len(results) == 6
    err = results[0]
    assert isinstance(err, BatchItemError)
    assert err.index == 0
    assert err.kind == "worker-died"
    for x in range(1, 6):
        assert results[x] == x * 10, results


def test_map_sequential_path_unaffected_by_death_machinery():
    # jobs=1 never forks: the poison item would kill the test process
    # itself, so only check the plain path still threads results through.
    assert BatchScheduler(1).map(_square, range(5)) == [
        x * x for x in range(5)
    ]


# -- default_jobs / mp_context ----------------------------------------------


def test_default_jobs_uses_affinity_mask(monkeypatch):
    # A 2-CPU cgroup quota on a 64-core host must size the pool at 2:
    # sched_getaffinity reflects the quota, cpu_count does not.
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
    assert default_jobs() == 2


def test_default_jobs_falls_back_to_cpu_count(monkeypatch):
    def unavailable(pid):
        raise OSError("not supported here")

    monkeypatch.setattr(os, "sched_getaffinity", unavailable, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 5)
    assert default_jobs() == 5


def test_default_jobs_never_below_one(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
    assert default_jobs() >= 1


def test_mp_context_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert mp_context().get_start_method() == "spawn"


def test_mp_context_rejects_unknown_override(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "warpdrive")
    with pytest.raises(ValueError, match="warpdrive"):
        mp_context()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    or "forkserver" not in multiprocessing.get_all_start_methods(),
    reason="needs both fork and forkserver",
)
def test_mp_context_prefers_forkserver_when_threaded(monkeypatch):
    monkeypatch.delenv("REPRO_MP_START", raising=False)
    # Single-threaded parent: fork stays the default (the determinism
    # tests rely on fork-inherited state shipping).
    assert mp_context().get_start_method() == "fork"
    # With live threads, fork risks inheriting locks mid-acquisition;
    # the context switches to forkserver.
    stop = threading.Event()
    t = threading.Thread(target=stop.wait, daemon=True)
    t.start()
    try:
        assert mp_context().get_start_method() == "forkserver"
    finally:
        stop.set()
        t.join()


# -- parallel Table II ------------------------------------------------------


def _verdict_grid(result):
    return {key: [v for v, _ in runs] for key, runs in result.items()}


def _unit_time_par2(result, timeout):
    """PAR-2 under the deterministic unit-time proxy: solved costs 1.0,
    unsolved the 2x penalty — identical iff the verdicts are identical."""
    return {
        key: par2_score(
            [(v, 1.0) for v, _ in runs], timeout
        ).format()
        for key, runs in result.items()
    }


@pytest.mark.slow
def test_parallel_run_family_matches_sequential():
    problems = satcomp_problems(scale=0.35, per_family=1, seed=3)[:4]
    timeout = 20.0
    personalities = ("minisat", "cms")
    sequential = run_family(
        problems, personalities, timeout, FAST, jobs=1
    )
    parallel = run_family(
        problems, personalities, timeout, FAST, jobs=2
    )
    assert set(sequential) == set(parallel) == {
        (p, b) for p in personalities for b in (False, True)
    }
    assert _verdict_grid(sequential) == _verdict_grid(parallel)
    assert _unit_time_par2(sequential, timeout) == _unit_time_par2(
        parallel, timeout
    )
    # Every run is shaped (verdict, seconds) for par2_score either way.
    for runs in parallel.values():
        assert len(runs) == len(problems)
        for verdict, seconds in runs:
            assert verdict in (True, False, None)
            assert seconds >= 0.0
