"""BatchScheduler and the parallel Table II path: many instances over a
bounded pool, with verdicts and PAR-2 math identical to the sequential
run (scored under the deterministic unit-time proxy, since wall-clock
seconds are the one thing parallelism legitimately changes).
"""

import pytest

from repro.core.config import Config
from repro.experiments import par2_score, run_family, satcomp_problems
from repro.portfolio import BatchScheduler, default_jobs

FAST = Config(
    xl_sample_bits=8,
    elimlin_sample_bits=8,
    sat_conflict_start=500,
    sat_conflict_step=500,
    sat_conflict_max=1000,
    max_iterations=2,
)


def _square(x):
    return x * x


def _raise_on_seven(x):
    if x == 7:
        raise ValueError("seven")
    return x


def test_map_preserves_item_order_sequential():
    assert BatchScheduler(1).map(_square, range(10)) == [
        x * x for x in range(10)
    ]


def test_map_preserves_item_order_parallel():
    assert BatchScheduler(3).map(_square, range(20)) == [
        x * x for x in range(20)
    ]


def test_map_propagates_worker_exceptions():
    with pytest.raises(ValueError):
        BatchScheduler(2).map(_raise_on_seven, range(10))


def test_single_item_runs_inline():
    assert BatchScheduler(8).map(_square, [5]) == [25]


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_run_family_empty_problem_list_keeps_grid_keys():
    # Regression: the cell-based rewrite must still emit every
    # (personality, use_bosphorus) key for an empty family — the report
    # layer renders all-zero score lines from them.
    out = run_family([], ("minisat", "cms"), timeout_s=1.0, jobs=1)
    assert set(out) == {(p, b) for p in ("minisat", "cms") for b in (False, True)}
    assert all(runs == [] for runs in out.values())


# -- parallel Table II ------------------------------------------------------


def _verdict_grid(result):
    return {key: [v for v, _ in runs] for key, runs in result.items()}


def _unit_time_par2(result, timeout):
    """PAR-2 under the deterministic unit-time proxy: solved costs 1.0,
    unsolved the 2x penalty — identical iff the verdicts are identical."""
    return {
        key: par2_score(
            [(v, 1.0) for v, _ in runs], timeout
        ).format()
        for key, runs in result.items()
    }


@pytest.mark.slow
def test_parallel_run_family_matches_sequential():
    problems = satcomp_problems(scale=0.35, per_family=1, seed=3)[:4]
    timeout = 20.0
    personalities = ("minisat", "cms")
    sequential = run_family(
        problems, personalities, timeout, FAST, jobs=1
    )
    parallel = run_family(
        problems, personalities, timeout, FAST, jobs=2
    )
    assert set(sequential) == set(parallel) == {
        (p, b) for p in personalities for b in (False, True)
    }
    assert _verdict_grid(sequential) == _verdict_grid(parallel)
    assert _unit_time_par2(sequential, timeout) == _unit_time_par2(
        parallel, timeout
    )
    # Every run is shaped (verdict, seconds) for par2_score either way.
    for runs in parallel.values():
        assert len(runs) == len(problems)
        for verdict, seconds in runs:
            assert verdict in (True, False, None)
            assert seconds >= 0.0
