"""Tests for the .anf text parser/writer."""

import io

import pytest

from repro.anf import (
    AnfParseError,
    Poly,
    Ring,
    parse_polynomial,
    parse_system,
    read_anf,
    write_anf,
)


def test_simple_polynomial():
    ring = Ring()
    p = parse_polynomial("x1*x2 + x3 + 1", ring)
    assert p == Poly([(1, 2), (3,), ()])
    assert ring.n_vars >= 4


def test_constants():
    ring = Ring()
    assert parse_polynomial("0", ring).is_zero()
    assert parse_polynomial("1", ring).is_one()
    assert parse_polynomial("1 + 1", ring).is_zero()


def test_parentheses():
    ring = Ring()
    p = parse_polynomial("(x1 + x2)*x3", ring)
    assert p == Poly([(1, 3), (2, 3)])


def test_named_variables():
    ring = Ring()
    p = parse_polynomial("a*b + a", ring)
    assert ring.index_of("a") == 0
    assert ring.index_of("b") == 1
    assert p == Poly([(0, 1), (0,)])


def test_duplicate_terms_cancel():
    ring = Ring()
    assert parse_polynomial("x1 + x1", ring).is_zero()


def test_square_collapses():
    ring = Ring()
    assert parse_polynomial("x1*x1", ring) == Poly.variable(1)


def test_bad_input_raises():
    ring = Ring()
    with pytest.raises(AnfParseError):
        parse_polynomial("x1 +", ring)
    with pytest.raises(AnfParseError):
        parse_polynomial("x1 & x2", ring)
    with pytest.raises(AnfParseError):
        parse_polynomial("(x1", ring)
    with pytest.raises(AnfParseError):
        parse_polynomial("2*x1", ring)


def test_parse_system_skips_comments():
    ring, polys = parse_system("""
# a comment
c another comment
x1 + 1

x2*x3
""")
    assert len(polys) == 2


def test_roundtrip_through_text():
    ring, polys = parse_system("x1*x2 + x3 + 1\nx2 + x4")
    buf = io.StringIO()
    write_anf(buf, polys, ring)
    ring2, polys2 = parse_system(buf.getvalue())
    assert polys == polys2


def test_read_anf_from_file_object():
    ring, polys = read_anf(io.StringIO("x1 + x2\n"))
    assert polys == [Poly([(1,), (2,)])]
