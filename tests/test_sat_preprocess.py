"""Tests for the SatELite-style preprocessor (Lingeling personality)."""

import itertools
import random

import pytest

from repro.sat import Preprocessor, Solver, mk_lit
from repro.sat.types import FALSE, TRUE, UNDEF


def brute_models(n_vars, clauses):
    models = []
    for bits in itertools.product([0, 1], repeat=n_vars):
        if all(any(bits[l >> 1] ^ (l & 1) for l in c) for c in clauses):
            models.append(list(bits))
    return models


def random_3sat(n, m, rng):
    clauses = []
    for _ in range(m):
        vs = rng.sample(range(n), 3)
        clauses.append([mk_lit(v, rng.random() < 0.5) for v in vs])
    return clauses


def solve(n_vars, clauses):
    solver = Solver()
    solver.ensure_vars(n_vars)
    for c in clauses:
        if not solver.add_clause(c):
            return False, None
    verdict = solver.solve()
    return verdict, solver.model if verdict else None


def test_unit_propagation():
    pre = Preprocessor(3, [[mk_lit(0)], [mk_lit(0, True), mk_lit(1)]])
    result = pre.run()
    assert result.status is True
    assert mk_lit(0) in result.fixed
    assert mk_lit(1) in result.fixed


def test_unit_conflict_detected():
    pre = Preprocessor(1, [[mk_lit(0)], [mk_lit(0, True)]])
    assert pre.run().status is False


def test_subsumption_removes_superset():
    clauses = [[mk_lit(0), mk_lit(1)], [mk_lit(0), mk_lit(1), mk_lit(2)]]
    pre = Preprocessor(3, clauses)
    result = pre.run(use_bve=False)
    lens = sorted(len(c) for c in result.clauses)
    assert lens == [2]


def test_strengthening_self_subsumes():
    # (a ∨ b) and (a ∨ ¬b ∨ c): the second strengthens against the first?
    # (a∨b) with (¬b flipped) ⊆ (a∨¬b∨c) → second becomes (a ∨ c).
    clauses = [
        [mk_lit(0), mk_lit(1)],
        [mk_lit(0), mk_lit(1, True), mk_lit(2)],
    ]
    pre = Preprocessor(3, clauses)
    result = pre.run(use_bve=False)
    assert sorted(sorted(c) for c in result.clauses) == sorted(
        [sorted([mk_lit(0), mk_lit(1)]), sorted([mk_lit(0), mk_lit(2)])]
    )


def test_bve_eliminates_pure_variable():
    # Variable 2 occurs only positively: BVE resolves it away (0 resolvents).
    clauses = [[mk_lit(0), mk_lit(2)], [mk_lit(1), mk_lit(2)]]
    pre = Preprocessor(3, clauses)
    result = pre.run()
    for c in result.clauses:
        assert all((l >> 1) != 2 for l in c)


@pytest.mark.parametrize("seed", range(15))
def test_equisatisfiable_with_original(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 9)
    clauses = random_3sat(n, rng.randint(n, 4 * n), rng)
    original_models = brute_models(n, clauses)
    pre = Preprocessor(n, [list(c) for c in clauses])
    result = pre.run()
    if result.status is False:
        assert not original_models
        return
    verdict, model = solve(n, result.clauses)
    assert (verdict is True) == bool(original_models)


@pytest.mark.parametrize("seed", range(15))
def test_model_extension_satisfies_original(seed):
    rng = random.Random(1000 + seed)
    n = rng.randint(4, 9)
    clauses = random_3sat(n, rng.randint(n, 4 * n), rng)
    pre = Preprocessor(n, [list(c) for c in clauses])
    result = pre.run()
    if result.status is False:
        return
    verdict, model = solve(n, result.clauses)
    if verdict is not True:
        return
    extended = pre.extend_model(
        [model[v] if v < len(model) else UNDEF for v in range(n)]
    )
    bits = [1 if x == TRUE else 0 for x in extended]
    for clause in clauses:
        assert any(bits[l >> 1] ^ (l & 1) for l in clause), "original clause broken"
