"""The observability layer: tracer/metrics units, exporters, and the
fork-boundary guarantees (worker spans adopted into the parent trace
exactly once — including across dead-worker respawns)."""

import json
import time

import pytest

from repro.anf import parse_system
from repro.core import Bosphorus, Config, STATUS_SAT
from repro.cube import CubeConqueror
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    validate_span,
    validate_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.portfolio import BackendResult, CdclBackend, PortfolioRunner, SolverBackend
from repro.sat import parse_dimacs

PAPER_EXAMPLE = """
x1*x2 + x3 + x4 + 1
x1*x2*x3 + x1 + x3 + 1
x1*x3 + x3*x4*x5 + x3
x2*x3 + x3*x5 + 1
x2*x3 + x5 + 1
"""


def sat_micro():
    return parse_dimacs("p cnf 3 3\n1 2 0\n-1 2 0\n-2 3 0\n")


class DyingBackend(SolverBackend):
    """Kills its own worker process mid-solve (module-level: the engine
    pickles backends into workers)."""

    name = "dying"

    def solve(self, formula, timeout_s=None, deadline=None,
              conflict_budget=None, cancel=None, assumptions=None):
        import os

        time.sleep(0.2)
        os._exit(17)


# -- Tracer -----------------------------------------------------------------


def test_span_nesting_builds_parentage():
    tracer = Tracer()
    with tracer.span("outer", kind="test") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current_id() == inner.id
        assert tracer.current_id() == outer.id
    spans = tracer.spans()
    assert [s["name"] for s in spans] == ["inner", "outer"]  # exit order
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["outer"]["attrs"] == {"kind": "test"}
    validate_spans(spans)


def test_span_set_and_add_attributes():
    tracer = Tracer()
    with tracer.span("work") as span:
        span.set("facts", 3)
        span.add("hits", 2)
        span.add("hits", 5)
    (data,) = tracer.spans()
    assert data["attrs"] == {"facts": 3, "hits": 7}
    assert data["dur"] >= 0


def test_out_of_order_exit_self_heals():
    tracer = Tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")  # never exited explicitly
    outer.__exit__(None, None, None)  # leaks `inner`; stack must unwind
    assert tracer.current_id() is None
    with tracer.span("next") as nxt:
        assert nxt.id != inner.id
    assert tracer.spans()[-1]["parent"] is None


def test_span_ids_are_unique_across_tracers():
    a, b = Tracer(), Tracer()
    with a.span("x"):
        pass
    with b.span("x"):
        pass
    ids = {s["id"] for s in a.spans()} | {s["id"] for s in b.spans()}
    assert len(ids) == 2


def test_null_tracer_is_inert_and_shared():
    assert NULL_TRACER.enabled is False
    span = NULL_TRACER.span("anything", attr=1)
    assert span is NULL_TRACER.span("other")  # one shared inert object
    with span as s:
        s.set("k", "v")
        s.add("n", 1)
    assert span.id is None
    assert NULL_TRACER.spans() == []
    assert NULL_TRACER.adopt([{"id": "x"}]) == 0


def test_adopt_reparents_and_dedups():
    worker = Tracer()
    with worker.span("leg") as leg:
        with worker.span("sub"):
            pass
    shipped = worker.spans()

    parent = Tracer()
    with parent.span("race") as race:
        pass
    assert parent.adopt(shipped, parent_id=race.id) == 2
    assert parent.adopt(shipped, parent_id=race.id) == 0  # exactly once
    by_name = {s["name"]: s for s in parent.spans()}
    assert by_name["leg"]["parent"] == race.id  # worker root reparented
    assert by_name["sub"]["parent"] == leg.id  # intra-worker tree kept
    validate_spans(parent.spans())


def test_adopt_ignores_malformed_entries():
    parent = Tracer()
    assert parent.adopt([None, {}, {"no_id": 1}, "junk"]) == 0


# -- MetricsRegistry --------------------------------------------------------


def test_counters_gauges_histograms():
    m = MetricsRegistry()
    m.inc("conversions")
    m.inc("conversions", 4)
    m.set_gauge("queue_depth", 7)
    m.observe("solve_s", 0.5)
    m.observe("solve_s", 1.5)
    assert m.counter("conversions") == 5
    assert m.counter("missing") == 0
    assert m.gauge("queue_depth") == 7
    snap = m.snapshot()
    assert snap["counters"]["conversions"] == 5
    hist = snap["histograms"]["solve_s"]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(2.0)
    assert hist["min"] == pytest.approx(0.5)
    assert hist["max"] == pytest.approx(1.5)
    json.dumps(snap)  # snapshots are JSON-serialisable


def test_timer_records_a_histogram():
    m = MetricsRegistry()
    with m.timer("step_s"):
        pass
    assert m.snapshot()["histograms"]["step_s"]["count"] == 1


def test_merge_combines_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("jobs", 2)
    a.observe("solve_s", 1.0)
    b.inc("jobs", 3)
    b.observe("solve_s", 3.0)
    b.set_gauge("depth", 9)
    a.merge(b)
    a.merge(None)  # tolerated
    assert a.counter("jobs") == 5
    assert a.gauge("depth") == 9
    hist = a.snapshot()["histograms"]["solve_s"]
    assert hist == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}


def test_merge_accepts_plain_snapshots():
    a = MetricsRegistry()
    a.merge({"counters": {"jobs": 2}, "gauges": {},
             "histograms": {"s": {"count": 1, "sum": 2.0,
                                  "min": 2.0, "max": 2.0}}})
    assert a.counter("jobs") == 2
    assert a.snapshot()["histograms"]["s"]["count"] == 1


# -- exporters --------------------------------------------------------------


def _sample_spans():
    tracer = Tracer()
    with tracer.span("root", backends=["a", "b"]):
        with tracer.span("leaf"):
            pass
    return tracer.spans()


def test_write_jsonl_round_trips(tmp_path):
    path = tmp_path / "trace.jsonl"
    spans = _sample_spans()
    write_jsonl(spans, str(path))
    loaded = [json.loads(line) for line in path.read_text().splitlines()]
    validate_spans(loaded)
    assert [s["name"] for s in loaded] == [s["name"] for s in spans]


def test_write_chrome_trace_is_valid(tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(_sample_spans(), str(path))
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert {e["name"] for e in events} == {"root", "leaf"}
    for e in events:
        assert e["ph"] == "X"
        assert e["ts"] >= 0 and e["dur"] >= 0
        assert "span_id" in e["args"]
    leaf = next(e for e in events if e["name"] == "leaf")
    root = next(e for e in events if e["name"] == "root")
    assert leaf["args"]["parent"] == root["args"]["span_id"]


def test_validate_span_rejects_malformed():
    with pytest.raises(ValueError):
        validate_span({"id": "x"})
    with pytest.raises(ValueError):
        validate_span("not a dict")
    good = _sample_spans()[0]
    bad = dict(good, dur=-1.0)
    with pytest.raises(ValueError):
        validate_span(bad)
    dup = _sample_spans()
    with pytest.raises(ValueError):
        validate_spans(dup + [dict(dup[0])])


# -- fork boundary: portfolio ----------------------------------------------


def test_parallel_race_adopts_every_worker_span_exactly_once():
    tracer = Tracer()
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms", seed=2)],
        jobs=2,
        tracer=tracer,
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    spans = tracer.spans()
    validate_spans(spans)  # unique ids = no double adoption
    race = next(s for s in spans if s["name"] == "portfolio.race")
    legs = [s for s in spans if s["name"] == "portfolio.backend"]
    assert len(legs) == 2  # one leg per backend, exactly once
    assert {leg["attrs"]["backend"] for leg in legs} == {"minisat", "cms@2"}
    for leg in legs:
        assert leg["parent"] == race["id"]  # stitched under the race
        assert leg["pid"] != race["pid"]  # recorded in the worker
    # Stats rows link into the trace through the adopted leg ids.
    leg_ids = {leg["id"] for leg in legs}
    assert {row.span_id for row in outcome.stats} == leg_ids
    # Worker metrics merged at the result boundary.
    assert runner.metrics.counter("backend_solves") == 2


def test_sequential_race_records_leg_spans_parent_side():
    tracer = Tracer()
    runner = PortfolioRunner(
        [CdclBackend("minisat"), CdclBackend("cms")], jobs=1, tracer=tracer
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    spans = tracer.spans()
    legs = [s for s in spans if s["name"] == "portfolio.backend"]
    assert len(legs) == 1  # first win cancels the second before it runs
    assert outcome.stats[0].span_id == legs[0]["id"]


def test_dead_worker_race_still_yields_one_clean_trace():
    """A backend that hard-kills its worker contributes no spans; the
    survivor's spans are adopted exactly once and the trace stays
    well-formed."""
    tracer = Tracer()
    runner = PortfolioRunner(
        [CdclBackend("minisat"), DyingBackend()], jobs=2, tracer=tracer
    )
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    spans = tracer.spans()
    validate_spans(spans)
    legs = [s for s in spans if s["name"] == "portfolio.backend"]
    assert [leg["attrs"]["backend"] for leg in legs] == ["minisat"]
    dying_row = next(r for r in outcome.stats if r.backend == "dying")
    assert dying_row.span_id is None


# -- fork boundary: cube-and-conquer ---------------------------------------


def test_cube_conquest_traces_every_cube_exactly_once():
    tracer = Tracer()
    conqueror = CubeConqueror(
        [CdclBackend("minisat")], jobs=2, depth=2, tracer=tracer
    )
    outcome = conqueror.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    spans = tracer.spans()
    validate_spans(spans)
    conquer = next(s for s in spans if s["name"] == "cube.conquer")
    assert any(s["name"] == "cube.split" for s in spans)
    cube_spans = [s for s in spans if s["name"] == "cube.solve"]
    # One span per conquered cube, each adopted exactly once.
    indices = [s["attrs"]["index"] for s in cube_spans]
    assert len(indices) == len(set(indices))
    assert len(cube_spans) == len(
        [r for r in outcome.stats if r.span_id is not None]
    )
    for s in cube_spans:
        assert s["parent"] == conquer["id"]
    # Stats rows carry the adopted leg ids.
    linked = {r.span_id for r in outcome.stats if r.span_id}
    assert linked == {s["id"] for s in cube_spans}
    assert conqueror.metrics.counter("cube_solves") == len(cube_spans)


def test_cube_dead_worker_respawn_keeps_spans_exactly_once():
    """The batch layer respawns its pool after a hard worker death and
    re-runs never-started cubes: no cube span may appear twice even when
    the same item is retried across pool generations."""
    tracer = Tracer()
    conqueror = CubeConqueror(
        [CdclBackend("minisat"), DyingBackend()], jobs=2, depth=2,
        tracer=tracer,
    )
    outcome = conqueror.run(sat_micro(), timeout_s=15)
    spans = tracer.spans()
    validate_spans(spans)  # unique ids despite respawn/retry deliveries
    cube_spans = [s for s in spans if s["name"] == "cube.solve"]
    indices = [s["attrs"]["index"] for s in cube_spans]
    assert len(indices) == len(set(indices))  # each cube at most once
    # Dead cubes (error rows) contribute no spans.
    error_rows = [r for r in outcome.stats if r.status == "error"]
    for row in error_rows:
        assert row.span_id is None
    assert len(cube_spans) + len(error_rows) >= outcome.n_cubes


# -- tracing off is the default and changes nothing -------------------------


def test_tracing_off_by_default_everywhere():
    runner = PortfolioRunner([CdclBackend("minisat")], jobs=1)
    outcome = runner.run(sat_micro(), timeout_s=10)
    assert outcome.verdict is True
    assert runner.tracer is NULL_TRACER
    assert all(row.span_id is None for row in outcome.stats)
    result = outcome.results[0]
    assert result.spans is None and result.metrics is None


# -- end-to-end: Bosphorus trace export -------------------------------------


def test_bosphorus_trace_export_chrome(tmp_path):
    path = tmp_path / "run.json"
    ring, polys = parse_system(PAPER_EXAMPLE)
    config = Config(trace_path=str(path))
    result = Bosphorus(config).preprocess_anf(ring, polys)
    assert result.status == STATUS_SAT
    payload = json.loads(path.read_text())
    names = {e["name"] for e in payload["traceEvents"]}
    assert "bosphorus.preprocess" in names
    assert "satlearn.iteration" in names
    assert "anf_to_cnf.convert" in names


def test_bosphorus_trace_export_jsonl(tmp_path):
    path = tmp_path / "run.jsonl"
    ring, polys = parse_system(PAPER_EXAMPLE)
    config = Config(
        trace_path=str(path), use_xl=False, use_elimlin=False,
        stop_on_solution=False,
    )
    Bosphorus(config).preprocess_anf(ring, polys)
    spans = [json.loads(line) for line in path.read_text().splitlines()]
    validate_spans(spans)
    names = [s["name"] for s in spans]
    assert "sat.solve" in names  # the in-process inner SAT leg
    assert "conversion.final" in names


# -- server jobs carry spans/metrics across the pickle boundary -------------


def test_execute_job_traced_returns_span_tree():
    from repro.server.jobs import JobSpec, execute_job

    spec = JobSpec(fmt="anf", text="x1 + 1\nx1*x2 + x2", trace=True)
    result = execute_job(spec)
    spans = result["spans"]
    validate_spans(spans)
    by_name = {s["name"]: s for s in spans}
    assert {"server.job", "job.parse", "job.preprocess"} <= set(by_name)
    root = by_name["server.job"]
    assert root["parent"] is None
    assert by_name["job.parse"]["parent"] == root["id"]
    assert result["metrics"]["counters"]["jobs"] == 1


def test_execute_job_untraced_has_metrics_but_no_spans():
    from repro.server.jobs import JobSpec, execute_job

    spec = JobSpec(fmt="anf", text="x1 + 1")
    result = execute_job(spec)
    assert "spans" not in result
    assert result["metrics"]["counters"]["jobs"] == 1


def test_jobspec_rejects_trace_path_override():
    from repro.server.jobs import JobSpec

    spec = JobSpec(fmt="anf", text="x1", config={"trace_path": "/tmp/x"})
    with pytest.raises(ValueError, match="trace_path"):
        spec.validate()
