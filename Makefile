# Developer entry points.  PYTHONPATH is injected so no install is needed.

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast lint bench bench-smoke bench-gf2 bench-elimlin bench-cnf bench-portfolio bench-cube bench-server bench-obs

# Tier-1 verification: the full unit/integration suite.
test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# Static analysis: the AST invariant linter (src + benchmarks; stdlib
# only, runs in seconds).  Exit 0 clean, 1 findings.  Set
# LINT_FORMAT=json for the machine-readable report; see README
# "Static analysis" for the rules and the suppression pragma.
lint:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis

# Developer inner loop: everything except the `slow`-marked
# cipher-scale tests (see pytest.ini).
test-fast:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q -m "not slow"

# Full benchmark run (slow; honours REPRO_BENCH_COUNT / REPRO_BENCH_TIMEOUT).
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_*.py --benchmark-only -q

# Perf smoke: run every benchmark file once with tiny parameters and the
# timing machinery disabled.  Catches regressions (crashes, pathological
# slowdowns, broken assertions) in the hot paths without a full run.
bench-smoke:
	REPRO_BENCH_COUNT=1 REPRO_BENCH_TIMEOUT=2 \
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_*.py -q --benchmark-disable

# The GF(2) kernel perf claim: the Four-Russians `rref` >=3x over the
# verbatim seed Gauss-Jordan (`rref_gj`) on the real Simon32-XL
# linearisation, bit-for-bit identical output.  REPRO_BENCH_COUNT>=2
# arms the ratio assertion.
bench-gf2:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_solver_core.py \
		-q --benchmark-only -k "gf2_rref"

# The mask-native XL/ElimLin perf claim (>=3x on the to_matrix /
# _occurrence_counts paths at cipher scale, zero tuple fallbacks),
# timed and asserted.  REPRO_BENCH_COUNT>=2 arms the ratio assertions.
bench-elimlin:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_solver_core.py \
		-q --benchmark-only -k "elimlin_wide or xl_wide"

# The mask-native ANF→CNF perf claim (>=3x on the isolated
# truth-table/convert path at Simon32 scale, zero tuple fallbacks) plus
# the bit-for-bit differential vs the scalar converter on Simon/Speck.
# REPRO_BENCH_COUNT>=2 arms the ratio assertion.
bench-cnf:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_anf_to_cnf.py \
		-q --benchmark-only

# The portfolio claim: the backend conformance suite, then batch-mode
# run_family on the satcomp smoke suite beating the sequential path on
# wall-clock (speedup assertion armed on >=2 CPUs with
# REPRO_BENCH_COUNT>=2; verdict soundness always checked).  The engine/
# batch test files are covered by `make test` and not repeated here.
bench-portfolio:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/test_portfolio_backends.py -q
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_portfolio.py \
		-q --benchmark-only

# The cube-and-conquer claim: splitter/scheduler correctness tests, then
# the cubed UNSAT Simon refutation beating the uncubed solver on
# wall-clock (speedup assertion armed on >=2 CPUs with
# REPRO_BENCH_COUNT>=2; verdict soundness always checked).
bench-cube:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/test_cube_splitter.py \
		tests/test_cube_conquer.py -q
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_cube.py \
		-q --benchmark-only

# The solver-service claim: server pool/cache/protocol tests, then
# protocol-level throughput scaling with workers (speedup assertion
# armed on >=2 CPUs with REPRO_BENCH_COUNT>=2) and the warm persistent
# cache beating cold with zero reconversions and bit-for-bit identical
# CNF (always asserted — it is determinism, not timing).
bench-server:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/test_server_cache.py \
		tests/test_server_pool.py tests/test_server_e2e.py -q
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_server.py \
		-q --benchmark-only

# The observability claim: tracer/metrics unit + fork-boundary tests,
# then the overhead pin — the always-on instrumentation costs < 2% of
# the Simon satlearn loop when tracing is off (ratio armed with
# REPRO_BENCH_COUNT>=2), and a traced run exports a schema-valid
# JSON-lines trace (always asserted).
bench-obs:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/test_obs.py -q
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_obs.py \
		-q --benchmark-only
